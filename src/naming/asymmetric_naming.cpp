#include "naming/asymmetric_naming.h"

#include <stdexcept>

namespace ppn {

AsymmetricNaming::AsymmetricNaming(StateId p) : p_(p) {
  if (p == 0) throw std::invalid_argument("AsymmetricNaming: P must be >= 1");
}

std::string AsymmetricNaming::name() const {
  return "asymmetric-naming(P=" + std::to_string(p_) + ")";
}

MobilePair AsymmetricNaming::mobileDelta(StateId initiator,
                                         StateId responder) const {
  if (initiator == responder) {
    return MobilePair{initiator, static_cast<StateId>((responder + 1) % p_)};
  }
  return MobilePair{initiator, responder};
}

std::pair<std::uint32_t, std::uint64_t> holePotential(const Configuration& c,
                                                      StateId p) {
  std::vector<std::uint32_t> hist = c.histogram(p);
  std::uint32_t holes = 0;
  for (StateId s = 0; s < p; ++s) holes += (hist[s] == 0) ? 1u : 0u;

  std::uint64_t distance = 0;
  if (holes > 0) {
    for (const StateId s : c.mobile) {
      for (StateId j = 1; j < p; ++j) {
        if (hist[(s + j) % p] == 0) {
          distance += j;
          break;
        }
      }
    }
  }
  return {holes, distance};
}

}  // namespace ppn
