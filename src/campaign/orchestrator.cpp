#include "campaign/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/artifact.h"
#include "campaign/shard_runner.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"
#include "util/json.h"

namespace ppn {

namespace {

using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void campaignSignalHandler(int) { g_interrupted = 1; }

struct ShardState {
  std::uint32_t index = 0;
  std::vector<std::uint64_t> unitIds;  ///< this shard's units, ascending
  pid_t pid = -1;
  bool done = false;
  bool stallKilled = false;
  std::uint64_t spawns = 0;
  Clock::time_point nextSpawnAt = Clock::time_point::min();
  std::uintmax_t lastSize = 0;
  bool sizeKnown = false;
  Clock::time_point lastProgressAt{};
  std::optional<std::uint64_t> inFlight;
  std::uint32_t inFlightAttempt = 0;
};

/// (unit id, status) pairs durably recorded in a JSONL checkpoint/artifact
/// line list; lines that do not look like unit results are skipped.
std::vector<std::pair<std::uint64_t, std::string>> unitStatuses(
    const std::vector<std::string>& lines) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  for (const std::string& line : lines) {
    const auto value = jsonParse(line);
    if (!value.has_value()) continue;
    const JsonValue* unitField = value->find("unit");
    const JsonValue* statusField = value->find("status");
    if (unitField == nullptr || statusField == nullptr ||
        !statusField->isString()) {
      continue;
    }
    const auto unitId = unitField->asU64();
    if (!unitId.has_value()) continue;
    out.emplace_back(*unitId, statusField->asString());
  }
  return out;
}

std::vector<std::pair<std::uint64_t, std::string>> partialStatuses(
    const std::string& path) {
  if (!std::filesystem::exists(path)) return {};
  try {
    return unitStatuses(readJsonlTolerant(path).lines);
  } catch (const std::runtime_error&) {
    return {};  // corrupt checkpoint: the respawned shard rebuilds it
  }
}

void writeStateFile(const std::string& outDir,
                    const std::unordered_map<std::uint64_t, std::uint32_t>&
                        attempts,
                    const std::set<std::uint64_t>& failed) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ordered;
  for (const auto& entry : attempts) {
    if (entry.second > 0) ordered.push_back(entry);
  }
  std::sort(ordered.begin(), ordered.end());
  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-campaign-state");
  w.key("attempts").beginArray();
  for (const auto& [unit, count] : ordered) {
    w.beginObject();
    w.key("unit").value(unit);
    w.key("attempts").value(count);
    w.endObject();
  }
  w.endArray();
  w.key("failed").beginArray();
  for (const std::uint64_t unit : failed) w.value(unit);
  w.endArray();
  w.endObject();
  writeFileAtomic(campaignStatePath(outDir), w.str() + "\n");
}

void loadStateFile(const std::string& outDir,
                   std::unordered_map<std::uint64_t, std::uint32_t>& attempts,
                   std::set<std::uint64_t>& failed) {
  const std::string path = campaignStatePath(outDir);
  if (!std::filesystem::exists(path)) return;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto doc = jsonParse(buf.str(), &error);
  if (!doc.has_value() || !doc->isObject()) {
    throw std::runtime_error("campaign: corrupt state file '" + path +
                             "': " + error);
  }
  if (const JsonValue* list = doc->find("attempts");
      list != nullptr && list->isArray()) {
    for (const JsonValue& entry : list->items()) {
      const JsonValue* unit = entry.find("unit");
      const JsonValue* count = entry.find("attempts");
      if (unit == nullptr || count == nullptr) continue;
      const auto u = unit->asU64();
      const auto c = count->asU64();
      if (u.has_value() && c.has_value()) {
        attempts[*u] = static_cast<std::uint32_t>(*c);
      }
    }
  }
  if (const JsonValue* list = doc->find("failed");
      list != nullptr && list->isArray()) {
    for (const JsonValue& entry : list->items()) {
      if (const auto u = entry.asU64(); u.has_value()) failed.insert(*u);
    }
  }
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

OrchestratorOutcome orchestrateCampaign(const CampaignManifest& manifest,
                                        const std::string& outDir,
                                        const OrchestratorOptions& options) {
  if (options.workers == 0) {
    throw std::runtime_error("campaign: workers must be >= 1");
  }
  ensureCampaignLayout(outDir);

  const std::string manifestJson = manifestToJson(manifest) + "\n";
  const std::string manifestPath = campaignManifestPath(outDir);
  if (options.resume) {
    if (!std::filesystem::exists(manifestPath)) {
      throw std::runtime_error("campaign: nothing to resume in '" + outDir +
                               "' (no manifest.json)");
    }
    if (readWholeFile(manifestPath) != manifestJson) {
      throw std::runtime_error(
          "campaign: manifest in '" + outDir +
          "' differs from the one being resumed — refusing to mix grids");
    }
  } else {
    if (std::filesystem::exists(campaignStatePath(outDir)) ||
        std::filesystem::exists(manifestPath)) {
      throw std::runtime_error("campaign: '" + outDir +
                               "' already holds a campaign (resume it, or "
                               "choose a fresh directory)");
    }
    writeFileAtomic(manifestPath, manifestJson);
  }

  std::unordered_map<std::uint64_t, std::uint32_t> attempts;
  std::set<std::uint64_t> blacklist;
  if (options.resume) loadStateFile(outDir, attempts, blacklist);

  const std::vector<WorkUnit> units = expandManifest(manifest);
  std::vector<ShardState> shards(manifest.shards);
  for (std::uint32_t i = 0; i < manifest.shards; ++i) shards[i].index = i;
  for (const WorkUnit& unit : units) {
    shards[unitShard(manifest, unit.id)].unitIds.push_back(unit.id);
  }

  /// Terminal status per unit as durably observed in checkpoints/artifacts.
  std::unordered_map<std::uint64_t, std::string> unitStatus;
  for (ShardState& s : shards) {
    const ArtifactReadResult finalArtifact =
        readJsonlArtifact(shardFinalPath(outDir, s.index));
    if (finalArtifact.ok()) {
      s.done = true;
      // Completed in a previous session: count, but do not re-emit events.
      for (const auto& [unit, status] : unitStatuses(finalArtifact.lines)) {
        unitStatus[unit] = status;
      }
    } else if (options.resume) {
      for (const auto& [unit, status] :
           partialStatuses(shardPartialPath(outDir, s.index))) {
        unitStatus[unit] = status;
      }
    }
  }

  OrchestratorOutcome outcome;
  outcome.totalUnits = units.size();
  JsonlEventSink* sink = options.sink;
  if (sink != nullptr) {
    sink->onCampaignStart(units.size(), manifest.shards, options.workers,
                          options.resume);
  }
  writeStateFile(outDir, attempts, blacklist);

  // Signal handling: checkpoint-and-exit on SIGINT/SIGTERM.
  g_interrupted = 0;
  struct sigaction oldInt {}, oldTerm {};
  bool handlersInstalled = false;
  if (options.installSignalHandlers) {
    struct sigaction sa {};
    sa.sa_handler = campaignSignalHandler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, &oldInt);
    sigaction(SIGTERM, &sa, &oldTerm);
    handlersInstalled = true;
  }

  const auto runningCount = [&shards]() {
    std::uint32_t n = 0;
    for (const ShardState& s : shards) {
      if (s.pid >= 0) ++n;
    }
    return n;
  };

  const auto emitNewStatuses =
      [&](ShardState& s,
          const std::vector<std::pair<std::uint64_t, std::string>>& statuses) {
        for (const auto& [unit, status] : statuses) {
          if (unitStatus.count(unit) != 0) continue;
          unitStatus[unit] = status;
          if (sink != nullptr) {
            sink->onUnitEnd(unit, s.index, attempts[unit] + 1, status);
          }
        }
      };

  const auto spawnShard = [&](ShardState& s) {
    ++s.spawns;
    const std::vector<std::uint64_t> failedVec(blacklist.begin(),
                                               blacklist.end());
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
      // Child: plain shard worker. Default signal dispositions (the parent
      // kills us explicitly when needed), no exec, direct library call.
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      ShardOptions shardOptions;
      shardOptions.shardIndex = s.index;
      shardOptions.failedUnits = failedVec;
      int rc = 1;
      try {
        rc = runShard(manifest, outDir, shardOptions);
      } catch (...) {
        rc = 1;
      }
      std::_Exit(rc);
    }
    if (pid < 0) {
      // fork failed (resource pressure): try again shortly.
      s.nextSpawnAt = Clock::now() + std::chrono::milliseconds(500);
      return;
    }
    s.pid = pid;
    s.stallKilled = false;
    s.sizeKnown = false;
    s.lastProgressAt = Clock::now();
    if (sink != nullptr) sink->onShardSpawn(s.index, pid, s.spawns);
  };

  const auto handleCrash = [&](ShardState& s, int code, int sig) {
    emitNewStatuses(s, partialStatuses(shardPartialPath(outDir, s.index)));
    // Shards complete units in ascending id order and checkpoint after each,
    // so the first unit without a durable line is the one that was running.
    std::optional<std::uint64_t> culprit;
    for (const std::uint64_t unit : s.unitIds) {
      if (unitStatus.count(unit) == 0) {
        culprit = unit;
        break;
      }
    }
    std::string reason = s.stallKilled ? "stalled"
                         : sig != 0    ? "signal " + std::to_string(sig)
                                       : "exit code " + std::to_string(code);
    std::uint32_t unitAttempts = 1;
    if (culprit.has_value()) {
      unitAttempts = ++attempts[*culprit];
      if (unitAttempts >= options.maxAttempts) {
        blacklist.insert(*culprit);
        ++outcome.failedUnits;
        if (sink != nullptr) {
          sink->onUnitFailed(*culprit, s.index, unitAttempts, reason);
        }
      }
    }
    const std::uint64_t shift = std::min<std::uint32_t>(
        unitAttempts > 0 ? unitAttempts - 1 : 0, 20);
    const std::uint64_t backoff = std::min(
        options.backoffMillis << shift, options.backoffCapMillis);
    if (culprit.has_value() && blacklist.count(*culprit) == 0 &&
        sink != nullptr) {
      sink->onUnitRetry(*culprit, s.index, unitAttempts, backoff, reason);
    }
    s.nextSpawnAt = Clock::now() + std::chrono::milliseconds(
                                       static_cast<std::int64_t>(backoff));
    ++outcome.shardRestarts;
    writeStateFile(outDir, attempts, blacklist);
  };

  const auto handleExit = [&](ShardState& s, int status) {
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    if (sink != nullptr) sink->onShardExit(s.index, s.pid, code, sig);
    s.pid = -1;
    s.inFlight.reset();
    const ArtifactReadResult finalArtifact =
        readJsonlArtifact(shardFinalPath(outDir, s.index));
    if (code == 0 && finalArtifact.ok()) {
      s.done = true;
      emitNewStatuses(s, unitStatuses(finalArtifact.lines));
    } else {
      handleCrash(s, code, sig);
    }
  };

  const auto pollShard = [&](ShardState& s) {
    const std::string partial = shardPartialPath(outDir, s.index);
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(partial, ec);
    if (!ec && (!s.sizeKnown || size != s.lastSize)) {
      s.sizeKnown = true;
      s.lastSize = size;
      s.lastProgressAt = Clock::now();
    }
    emitNewStatuses(s, partialStatuses(partial));
    // The next incomplete unit is in flight; report each (unit, attempt)
    // transition exactly once.
    std::optional<std::uint64_t> next;
    for (const std::uint64_t unit : s.unitIds) {
      if (unitStatus.count(unit) == 0) {
        next = unit;
        break;
      }
    }
    if (next.has_value()) {
      const std::uint32_t attempt = attempts[*next] + 1;
      if (s.inFlight != next || s.inFlightAttempt != attempt) {
        s.inFlight = next;
        s.inFlightAttempt = attempt;
        if (sink != nullptr) sink->onUnitStart(*next, s.index, attempt);
      }
    }
    if (options.stallTimeoutMillis > 0 && !s.stallKilled &&
        Clock::now() - s.lastProgressAt >
            std::chrono::milliseconds(
                static_cast<std::int64_t>(options.stallTimeoutMillis))) {
      s.stallKilled = true;
      kill(s.pid, SIGKILL);  // reaped as a crash on the next iteration
    }
  };

  // E25: the parent samples live shards' /proc resources — from HERE, not
  // from inside the shards, so a wedged shard is still observed and a dying
  // one costs nothing (DESIGN decision 16).
  ResourceSampler sampler(options.resourceSampleMillis);
  const CounterHandle samplesTaken =
      options.metrics != nullptr
          ? options.metrics->counter("resource_samples")
          : CounterHandle{};
  const auto sampleResources = [&]() {
    if (options.resourceSampleMillis == 0) return;
    std::vector<std::pair<std::uint32_t, std::int64_t>> live;
    for (const ShardState& s : shards) {
      if (s.pid >= 0) {
        live.emplace_back(s.index, static_cast<std::int64_t>(s.pid));
      }
    }
    for (const auto& [shard, sample] : sampler.sample(live)) {
      if (sink != nullptr) sink->onResourceSample(shard, sample);
      if (options.metrics != nullptr) {
        const std::string prefix =
            "campaign_shard" + std::to_string(shard) + "_";
        MetricsRegistry::set(
            options.metrics->gauge(prefix + "rss_bytes"),
            static_cast<std::int64_t>(sample.rssBytes));
        MetricsRegistry::set(options.metrics->gauge(prefix + "cpu_permille"),
                             sample.cpuPermille);
        options.metrics->add(samplesTaken);
      }
    }
  };

  bool allDone = false;
  while (g_interrupted == 0) {
    for (ShardState& s : shards) {
      if (s.pid < 0) continue;
      int status = 0;
      const pid_t reaped = waitpid(s.pid, &status, WNOHANG);
      if (reaped == s.pid) handleExit(s, status);
    }
    for (ShardState& s : shards) {
      if (s.pid >= 0) pollShard(s);
    }
    for (ShardState& s : shards) {
      if (s.done || s.pid >= 0) continue;
      if (runningCount() >= options.workers) break;
      if (Clock::now() < s.nextSpawnAt) continue;
      spawnShard(s);
    }
    // After the spawn pass, so a shard that lives for less than one poll
    // interval still contributes its immediate baseline sample.
    sampleResources();
    allDone = std::all_of(shards.begin(), shards.end(),
                          [](const ShardState& s) { return s.done; });
    if (allDone) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max<std::uint64_t>(1, options.pollMillis)));
  }

  if (!allDone && g_interrupted != 0) {
    // Interrupted: kill the workers, keep their durable checkpoints, and
    // leave a consistent resume state behind.
    outcome.interrupted = true;
    for (ShardState& s : shards) {
      if (s.pid >= 0) kill(s.pid, SIGKILL);
    }
    for (ShardState& s : shards) {
      if (s.pid < 0) continue;
      int status = 0;
      waitpid(s.pid, &status, 0);
      if (sink != nullptr) {
        sink->onShardExit(s.index, s.pid, -1,
                          WIFSIGNALED(status) ? WTERMSIG(status) : 0);
      }
      s.pid = -1;
      emitNewStatuses(s, partialStatuses(shardPartialPath(outDir, s.index)));
    }
    writeStateFile(outDir, attempts, blacklist);
  }

  if (handlersInstalled) {
    sigaction(SIGINT, &oldInt, nullptr);
    sigaction(SIGTERM, &oldTerm, nullptr);
  }

  outcome.failedUnits = blacklist.size();
  outcome.completedUnits = 0;
  for (const auto& [unit, status] : unitStatus) {
    if (status != "failed") ++outcome.completedUnits;
  }
  if (sink != nullptr) {
    sink->onCampaignEnd(outcome.completedUnits, outcome.failedUnits,
                        outcome.totalUnits, outcome.interrupted);
  }
  return outcome;
}

}  // namespace ppn
