// Campaign orchestrator: drives K shard worker processes over a manifest's
// unit list, surviving crashed, hung, and killed shards.
//
// Process model: the orchestrator fork()s one child per shard (at most
// `workers` concurrently); each child calls runShard() directly — no exec,
// no IPC beyond the filesystem. The parent stays single-threaded, so forking
// is safe, and watches children via waitpid plus a progress heartbeat on
// each shard's partial checkpoint file.
//
// Failure policy:
//  * a shard that exits nonzero or dies on a signal is respawned after a
//    capped exponential backoff (backoffMillis * 2^(attempts-1), capped at
//    backoffCapMillis). Shards execute units in ascending id order and
//    checkpoint after each one, so the FIRST unit missing from the partial
//    checkpoint is the unit that killed the shard; its attempt count is
//    charged;
//  * a running shard whose checkpoint stops growing for stallTimeoutMillis
//    (0 disables) is declared hung, SIGKILLed, and handled as a crash — this
//    reuses the same watchdog philosophy as RunLimits::maxWallMillis one
//    level up the stack;
//  * a unit that reaches maxAttempts is BLACKLISTED: the orchestrator emits
//    unit_failed, the respawned shard writes a deterministic
//    {"status":"failed"} line for it, and the rest of the campaign proceeds
//    (graceful degradation — the merge pass marks the cell FAILED);
//  * SIGINT/SIGTERM interrupt the campaign: children are killed, the
//    attempt/blacklist state is checkpointed to state.json, campaign_end is
//    emitted with interrupted=true, and the same command with --resume picks
//    up where it left off. Completed units are never re-executed, and the
//    merged output of an interrupted+resumed campaign is byte-identical to
//    an uninterrupted one.
//
// Telemetry: the orchestrator emits the campaign event family (obs/events.h:
// campaign_start, shard_spawn/shard_exit, unit_start/unit_end/unit_retry/
// unit_failed, campaign_end) to the caller's JsonlEventSink; unit_start/
// unit_end are observed from the checkpoint files, so they reflect what the
// shards durably recorded, not what the parent merely scheduled. The parent
// also samples each live shard's /proc/<pid>/{stat,statm,io} on the
// resourceSampleMillis cadence (E25, obs/resource_sampler.h), emitting
// resource_sample events into the same stream and per-shard rss/cpu gauges
// into the optional MetricsRegistry — sampling lives HERE, not in the
// shards, so a wedged or dying shard is still observed (DESIGN decision 16).
#pragma once

#include <cstdint>
#include <string>

#include "campaign/manifest.h"

namespace ppn {

class JsonlEventSink;
class MetricsRegistry;

struct OrchestratorOptions {
  /// Maximum concurrently running shard processes (>= 1).
  std::uint32_t workers = 2;
  /// Attempts a unit is allowed (first try included) before blacklisting.
  std::uint32_t maxAttempts = 3;
  /// Respawn backoff after a crash: backoffMillis * 2^(attempts-1), capped.
  std::uint64_t backoffMillis = 100;
  std::uint64_t backoffCapMillis = 5'000;
  /// Hung-shard detection: SIGKILL a shard whose checkpoint has not grown
  /// for this long. 0 (default) disables — a legitimately long unit must not
  /// be shot; enable it when unit wall times are bounded.
  std::uint64_t stallTimeoutMillis = 0;
  /// Parent poll interval (child reaping, heartbeats, event emission).
  std::uint64_t pollMillis = 25;
  /// Resume a previous run in `outDir`: load state.json's attempt counts and
  /// blacklist, keep completed shard artifacts and partial checkpoints.
  /// False requires a fresh/empty layout (no state.json yet).
  bool resume = false;
  /// Orchestrator telemetry (not owned; may be null).
  JsonlEventSink* sink = nullptr;
  /// /proc resource-sampling cadence for live shards (E25): every live shard
  /// pid is sampled at most once per interval (plus an immediate baseline on
  /// first sight). 0 disables sampling entirely — the poll loop then never
  /// touches /proc, so disabled campaigns carry no overhead.
  std::uint64_t resourceSampleMillis = 1'000;
  /// Receives campaign_shard<i>_rss_bytes / _cpu_permille gauges and the
  /// resource_samples counter (not owned; may be null).
  MetricsRegistry* metrics = nullptr;
  /// Install SIGINT/SIGTERM handlers for checkpoint-and-exit (restored on
  /// return). Tests running the orchestrator in-process may disable this.
  bool installSignalHandlers = true;
};

struct OrchestratorOutcome {
  std::uint64_t totalUnits = 0;
  std::uint64_t completedUnits = 0;  ///< ok / degraded / skipped
  std::uint64_t failedUnits = 0;     ///< blacklisted after maxAttempts
  std::uint32_t shardRestarts = 0;   ///< crash/hang respawns performed
  bool interrupted = false;          ///< SIGINT/SIGTERM checkpoint-and-exit

  /// Every unit accounted for and none failed.
  bool ok() const { return !interrupted && failedUnits == 0; }
};

/// Runs the campaign to completion (or interruption). Throws
/// std::runtime_error for setup errors (bad outDir, resume-state mismatch);
/// per-shard failures are retried/degraded per the policy above, never
/// thrown. POSIX-only (fork/waitpid), like the rest of the harness.
OrchestratorOutcome orchestrateCampaign(const CampaignManifest& manifest,
                                        const std::string& outDir,
                                        const OrchestratorOptions& options);

}  // namespace ppn
