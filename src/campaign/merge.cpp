#include "campaign/merge.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "analysis/table1.h"
#include "campaign/artifact.h"
#include "faults/certify.h"
#include "obs/campaign_health.h"
#include "obs/campaign_trace.h"
#include "obs/events.h"
#include "util/json.h"

namespace ppn {

namespace {

[[noreturn]] void refuse(const std::string& what) {
  throw std::runtime_error("campaign merge: " + what);
}

struct UnitLine {
  std::string line;
  std::string status;
  std::string reason;
};

Table1Check parseTable1Check(const std::string& name) {
  if (name == "pass") return Table1Check::kPass;
  if (name == "fail") return Table1Check::kFail;
  return Table1Check::kUnknown;
}

std::string requireString(const JsonValue& obj, const char* key,
                          const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->isString()) {
    refuse("missing string field \"" + std::string(key) + "\" in " + where);
  }
  return v->asString();
}

/// The cell JSON a blacklisted robustness unit contributes to the rebuilt
/// table: the plan's coordinates with a FAILED verdict and zeroed statistics,
/// so the table still covers every cell and certified() is false.
std::string failedCellJson(const RobustnessCellPlan& plan,
                           const std::string& reason) {
  RobustnessCell cell = skippedRobustnessCell(plan);
  cell.verdict = CellVerdict::kFailed;
  cell.note = "campaign unit failed: " + reason;
  JsonWriter w;
  writeRobustnessCellJson(w, cell);
  return w.str();
}

}  // namespace

MergeSummary mergeCampaign(const std::string& outDir) {
  const CampaignManifest manifest =
      loadCampaignManifest(campaignManifestPath(outDir));
  const std::vector<WorkUnit> units = expandManifest(manifest);

  // Collect every shard's verified lines, keyed by unit id. Any integrity
  // failure, duplicate, or unknown unit refuses the whole merge.
  std::map<std::uint64_t, UnitLine> byUnit;
  for (std::uint32_t shard = 0; shard < manifest.shards; ++shard) {
    const std::string path = shardFinalPath(outDir, shard);
    const ArtifactReadResult artifact = readJsonlArtifact(path);
    if (!artifact.ok()) {
      refuse("shard artifact '" + path + "' failed verification: " +
             artifact.error + " (re-run or resume the campaign)");
    }
    for (const std::string& line : artifact.lines) {
      const auto value = jsonParse(line);
      if (!value.has_value() || !value->isObject()) {
        refuse("unparseable unit line in '" + path + "'");
      }
      const JsonValue* unitField = value->find("unit");
      const auto unitId =
          unitField != nullptr ? unitField->asU64() : std::nullopt;
      if (!unitId.has_value()) refuse("unit line without id in '" + path + "'");
      UnitLine entry;
      entry.line = line;
      entry.status = requireString(*value, "status", "'" + path + "'");
      if (const JsonValue* reason = value->find("reason");
          reason != nullptr && reason->isString()) {
        entry.reason = reason->asString();
      }
      if (!byUnit.emplace(*unitId, std::move(entry)).second) {
        refuse("duplicate unit " + std::to_string(*unitId) + " in '" + path +
               "'");
      }
    }
  }
  for (const WorkUnit& unit : units) {
    if (byUnit.count(unit.id) == 0) {
      refuse("unit " + std::to_string(unit.id) +
             " has no artifact line — campaign incomplete (resume it first)");
    }
  }
  if (byUnit.size() != units.size()) {
    refuse("artifacts cover " + std::to_string(byUnit.size()) +
           " units but the manifest defines " + std::to_string(units.size()));
  }

  MergeSummary summary;
  summary.totalUnits = units.size();

  // merged.jsonl: every line in ascending unit id order (std::map order),
  // republished with its own checksum footer.
  std::vector<std::string> mergedLines;
  mergedLines.reserve(byUnit.size());
  for (const auto& [id, entry] : byUnit) {
    mergedLines.push_back(entry.line);
    if (entry.status == "ok") {
      ++summary.okUnits;
    } else if (entry.status == "degraded") {
      ++summary.degradedUnits;
    } else if (entry.status == "skipped") {
      ++summary.skippedUnits;
    } else if (entry.status == "failed") {
      summary.failedUnits.push_back(id);
    } else {
      refuse("unit " + std::to_string(id) + " has unknown status \"" +
             entry.status + "\"");
    }
  }
  writeJsonlArtifact(mergedUnitsPath(outDir), mergedLines);

  // robustness_table.json: splice the embedded cell strings back into the
  // exact RobustnessTable::toJson() shape (JsonWriter emits compact JSON, so
  // hand-assembling the envelope keeps the bytes identical).
  std::vector<std::string> cellStrings;
  bool certified = true;
  std::vector<Table1CellResult> table1Cells;
  for (const WorkUnit& unit : units) {
    const UnitLine& entry = byUnit.at(unit.id);
    if (unit.kind == WorkUnit::Kind::kRobustness) {
      std::string cellJson;
      if (entry.status == "failed") {
        cellJson = failedCellJson(unit.plan, entry.reason.empty()
                                                 ? "retries exhausted"
                                                 : entry.reason);
      } else {
        const auto value = jsonParse(entry.line);
        cellJson = requireString(*value, "cell",
                                 "unit " + std::to_string(unit.id));
      }
      const auto cellDoc = jsonParse(cellJson);
      if (!cellDoc.has_value() || !cellDoc->isObject()) {
        refuse("unit " + std::to_string(unit.id) +
               " embeds an unparseable cell document");
      }
      if (requireString(*cellDoc, "verdict",
                        "unit " + std::to_string(unit.id) + " cell") ==
          cellVerdictName(CellVerdict::kFailed)) {
        certified = false;
      }
      cellStrings.push_back(std::move(cellJson));
    } else {
      Table1CellResult cell;
      if (entry.status == "failed") {
        cell.cell = "table1 cell " + std::to_string(unit.table1Index);
        cell.claim = "(not checked)";
        cell.mechanism = "campaign unit failed: " +
                         (entry.reason.empty() ? std::string("retries "
                                                             "exhausted")
                                               : entry.reason);
        cell.states = "-";
        cell.verdict = Table1Check::kUnknown;
      } else {
        const auto value = jsonParse(entry.line);
        const std::string where = "unit " + std::to_string(unit.id);
        cell.cell = requireString(*value, "cell", where);
        cell.claim = requireString(*value, "claim", where);
        cell.mechanism = requireString(*value, "checked_by", where);
        cell.states = requireString(*value, "states", where);
        cell.verdict = parseTable1Check(requireString(*value, "verdict",
                                                      where));
      }
      table1Cells.push_back(std::move(cell));
    }
  }
  summary.robustnessCertified = certified;

  std::string table = "{\"kind\":\"ppn-robustness-table\",\"certified\":";
  table += certified ? "true" : "false";
  table += ",\"cells\":[";
  for (std::size_t i = 0; i < cellStrings.size(); ++i) {
    if (i != 0) table += ',';
    table += cellStrings[i];
  }
  table += "]}";
  writeFileAtomic(mergedRobustnessTablePath(outDir), table + "\n");

  if (manifest.table1P != 0) {
    summary.hasTable1 = true;
    summary.table1Overall = table1AllPass(table1Cells);
    writeFileAtomic(mergedTable1Path(outDir),
                    table1Json(manifest.table1P, table1Cells) + "\n");
  }

  // E25: publish the checksummed health report. The report is a pure
  // function of the orchestrator stream's bytes, so re-merging the same
  // directory reproduces campaign_health.json byte-for-byte. Absence of the
  // stream (telemetry disabled) or a corrupt stream skips the report — the
  // merge's integrity duty is the unit artifacts, health is advisory.
  const CampaignTraceInputs traceInputs = discoverCampaignTraceInputs(outDir);
  if (!traceInputs.orchestratorEvents.empty()) {
    try {
      const CampaignHealth health = computeCampaignHealth(
          readJsonlTolerant(traceInputs.orchestratorEvents).lines);
      writeJsonlArtifact(campaignHealthPath(outDir),
                         {campaignHealthJson(health)});
      summary.healthWritten = true;
    } catch (const std::runtime_error&) {
    }
  }

  writeFileAtomic(campaignSummaryPath(outDir),
                  mergeSummaryJson(manifest, summary) + "\n");
  return summary;
}

std::string mergeSummaryJson(const CampaignManifest& manifest,
                             const MergeSummary& summary) {
  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-campaign-summary");
  w.key("name").value(manifest.name);
  w.key("units").value(summary.totalUnits);
  w.key("ok").value(summary.okUnits);
  w.key("degraded").value(summary.degradedUnits);
  w.key("skipped").value(summary.skippedUnits);
  w.key("failed").beginArray();
  for (const std::uint64_t id : summary.failedUnits) w.value(id);
  w.endArray();
  w.key("robustnessCertified").value(summary.robustnessCertified);
  if (summary.hasTable1) {
    w.key("table1").beginObject();
    w.key("p").value(static_cast<std::uint64_t>(manifest.table1P));
    w.key("overall").value(summary.table1Overall ? "pass" : "fail");
    w.endObject();
  }
  w.endObject();
  return w.str();
}

}  // namespace ppn
