// Campaign merge pass: rebuilds the canonical experiment documents from the
// per-shard artifacts of a completed campaign.
//
// Integrity policy: every shard artifact must verify (checksum footer, line
// count, CRC-32 over the body bytes) and every manifest unit must be covered
// by exactly one line. A torn, truncated, or tampered artifact is a HARD
// error — the merge refuses rather than silently producing a table with
// missing cells. (Blacklisted units are not missing: their shards wrote a
// deterministic {"status":"failed"} line, and the merge degrades those cells
// to FAILED verdicts instead of refusing.)
//
// Outputs (all written atomically):
//  * merged.jsonl           — every unit line, ascending unit id, checksum
//                             footer (the campaign's durable flat record);
//  * robustness_table.json  — byte-identical to RobustnessTable::toJson()
//                             of an in-process certifyRecovery run when no
//                             unit failed (cell JSON is spliced verbatim
//                             from the shard lines, never re-serialized);
//  * table1.json            — byte-identical to the table1_feasibility
//                             document, when the manifest enables Table 1;
//  * summary.json           — unit counts, failed unit ids, verdict rollups.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/manifest.h"

namespace ppn {

struct MergeSummary {
  std::uint64_t totalUnits = 0;
  std::uint64_t okUnits = 0;
  std::uint64_t degradedUnits = 0;
  std::uint64_t skippedUnits = 0;
  std::vector<std::uint64_t> failedUnits;  ///< blacklisted unit ids
  /// RobustnessTable::certified() over the rebuilt table (failed units count
  /// as FAILED cells, so an exhausted-retry campaign is never "certified").
  bool robustnessCertified = true;
  bool hasTable1 = false;
  bool table1Overall = false;
  /// E25: campaign_health.json was published (requires a surviving
  /// orchestrator event stream; telemetry-disabled campaigns skip it).
  bool healthWritten = false;

  bool clean() const { return failedUnits.empty(); }
};

/// Merges the campaign in `outDir` (which must hold manifest.json and every
/// shard's final artifact). Throws std::runtime_error when any artifact is
/// missing/corrupt or any unit is uncovered (e.g. the campaign was
/// interrupted and not resumed to completion).
MergeSummary mergeCampaign(const std::string& outDir);

/// The summary.json document for a finished merge.
std::string mergeSummaryJson(const CampaignManifest& manifest,
                             const MergeSummary& summary);

}  // namespace ppn
