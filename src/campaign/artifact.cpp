#include "campaign/artifact.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace ppn {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> kTable = makeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void writeFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw std::runtime_error("cannot open '" + tmp + "' for writing");
    }
    out << content;
    out.flush();
    if (!out) {
      throw std::runtime_error("short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename '" + tmp + "' onto '" + path + "'");
  }
}

std::string artifactFooterLine(std::uint32_t crc, std::uint64_t lines) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("artifact_footer");
  w.key("crc32").value(static_cast<std::uint64_t>(crc));
  w.key("lines").value(lines);
  w.endObject();
  return w.str();
}

void writeJsonlArtifact(const std::string& path,
                        const std::vector<std::string>& lines) {
  std::string body;
  for (const std::string& line : lines) {
    body += line;
    body += '\n';
  }
  std::string content = body;
  content += artifactFooterLine(crc32(body), lines.size());
  content += '\n';
  writeFileAtomic(path, content);
}

ArtifactReadResult readJsonlArtifact(const std::string& path) {
  ArtifactReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  if (content.empty() || content.back() != '\n') {
    result.error = "'" + path + "' is truncated (no terminating newline)";
    return result;
  }

  // Split off the footer (the final line) and verify it against the body.
  const std::size_t footerStart = content.rfind('\n', content.size() - 2);
  const std::size_t bodyEnd = footerStart == std::string::npos ? 0 : footerStart + 1;
  const std::string footer =
      content.substr(bodyEnd, content.size() - bodyEnd - 1);
  std::string parseError;
  const auto footerValue = jsonParse(footer, &parseError);
  const JsonValue* crcField = nullptr;
  const JsonValue* linesField = nullptr;
  const JsonValue* eventField = nullptr;
  if (footerValue.has_value() && footerValue->isObject()) {
    eventField = footerValue->find("event");
    crcField = footerValue->find("crc32");
    linesField = footerValue->find("lines");
  }
  if (eventField == nullptr || !eventField->isString() ||
      eventField->asString() != "artifact_footer" || crcField == nullptr ||
      linesField == nullptr) {
    result.error = "'" + path + "' has no artifact_footer line (torn write?)";
    return result;
  }
  const auto expectedCrc = crcField->asU64();
  const auto expectedLines = linesField->asU64();
  if (!expectedCrc.has_value() || !expectedLines.has_value()) {
    result.error = "'" + path + "' footer fields are not integers";
    return result;
  }

  const std::string_view body(content.data(), bodyEnd);
  std::uint64_t count = 0;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t nl = body.find('\n', pos);
    result.lines.emplace_back(body.substr(pos, nl - pos));
    pos = nl + 1;
    ++count;
  }
  if (count != *expectedLines) {
    result.error = "'" + path + "' body has " + std::to_string(count) +
                   " lines, footer says " + std::to_string(*expectedLines) +
                   " (truncated?)";
    result.lines.clear();
    return result;
  }
  if (crc32(body) != *expectedCrc) {
    result.error = "'" + path + "' checksum mismatch (corrupted)";
    result.lines.clear();
    return result;
  }
  return result;
}

}  // namespace ppn
