#include "campaign/manifest.h"

#include <filesystem>

#include "analysis/table1.h"
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace ppn {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("campaign manifest: " + what);
}

std::uint64_t asU64Field(const JsonValue& v, const char* key) {
  const auto u = v.asU64();
  if (!u.has_value()) bad(std::string(key) + " must be a non-negative integer");
  return *u;
}

std::uint32_t asU32Field(const JsonValue& v, const char* key) {
  const std::uint64_t u = asU64Field(v, key);
  if (u > 0xFFFFFFFFull) bad(std::string(key) + " out of range");
  return static_cast<std::uint32_t>(u);
}

std::vector<std::string> asStringArray(const JsonValue& v, const char* key) {
  if (!v.isArray()) bad(std::string(key) + " must be an array of strings");
  std::vector<std::string> out;
  for (const JsonValue& item : v.items()) {
    if (!item.isString()) bad(std::string(key) + " must contain only strings");
    out.push_back(item.asString());
  }
  return out;
}

std::string zeroPadded(std::uint32_t shard) {
  std::string s = std::to_string(shard);
  while (s.size() < 3) s.insert(s.begin(), '0');
  return s;
}

}  // namespace

std::vector<WorkUnit> expandManifest(const CampaignManifest& manifest) {
  std::vector<WorkUnit> units;
  std::uint64_t runIdBase = 0;
  for (RobustnessCellPlan& plan : planRobustnessCells(manifest.certify)) {
    WorkUnit unit;
    unit.id = units.size();
    unit.kind = WorkUnit::Kind::kRobustness;
    unit.runIdBase = runIdBase;
    if (!plan.skipped) runIdBase += manifest.certify.runs;
    unit.plan = std::move(plan);
    units.push_back(std::move(unit));
  }
  if (manifest.table1P != 0) {
    for (std::uint32_t i = 0; i < table1CellCount(); ++i) {
      WorkUnit unit;
      unit.id = units.size();
      unit.kind = WorkUnit::Kind::kTable1;
      unit.table1Index = i;
      units.push_back(std::move(unit));
    }
  }
  return units;
}

std::string manifestToJson(const CampaignManifest& m) {
  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-campaign-manifest");
  w.key("name").value(m.name);
  w.key("seed").value(m.certify.seed);
  w.key("protocols").beginArray();
  for (const std::string& p : m.certify.protocols) w.value(p);
  w.endArray();
  w.key("populations").beginArray();
  for (const std::uint32_t n : m.certify.populations) w.value(n);
  w.endArray();
  w.key("regimes").beginArray();
  for (const FaultRegime r : m.certify.regimes) w.value(faultRegimeName(r));
  w.endArray();
  w.key("schedulers").beginArray();
  for (const SchedulerKind s : m.certify.schedulers)
    w.value(schedulerKindName(s));
  w.endArray();
  w.key("runs").value(m.certify.runs);
  w.key("faultWindow").value(m.certify.faultWindow);
  w.key("rate").value(m.certify.faultRate);
  w.key("period").value(m.certify.faultPeriod);
  w.key("corruptFraction").value(m.certify.corruptFraction);
  w.key("corruptLeader").value(m.certify.corruptLeader);
  w.key("maxInteractions").value(m.certify.limits.maxInteractions);
  w.key("checkInterval").value(m.certify.limits.checkInterval);
  w.key("maxWallMillis").value(m.certify.limits.maxWallMillis);
  w.key("threads").value(m.certify.threads);
  w.key("shards").value(m.shards);
  w.key("table1P").value(static_cast<std::uint64_t>(m.table1P));
  if (m.debugHangUnit.has_value()) {
    w.key("debugHangUnit").value(*m.debugHangUnit);
  }
  if (m.debugCrashUnit.has_value()) {
    w.key("debugCrashUnit").value(*m.debugCrashUnit);
  }
  w.endObject();
  return w.str();
}

CampaignManifest parseCampaignManifest(const std::string& json) {
  std::string error;
  const auto doc = jsonParse(json, &error);
  if (!doc.has_value()) bad("invalid JSON: " + error);
  if (!doc->isObject()) bad("document is not an object");

  CampaignManifest m;
  m.certify.observer = nullptr;
  bool sawKind = false;
  for (const auto& [key, value] : doc->members()) {
    if (key == "kind") {
      if (!value.isString() || value.asString() != "ppn-campaign-manifest") {
        bad("kind must be \"ppn-campaign-manifest\"");
      }
      sawKind = true;
    } else if (key == "name") {
      if (!value.isString()) bad("name must be a string");
      m.name = value.asString();
    } else if (key == "seed") {
      m.certify.seed = asU64Field(value, "seed");
    } else if (key == "protocols") {
      m.certify.protocols = asStringArray(value, "protocols");
    } else if (key == "populations") {
      if (!value.isArray()) bad("populations must be an array of integers");
      m.certify.populations.clear();
      for (const JsonValue& item : value.items()) {
        m.certify.populations.push_back(asU32Field(item, "populations[]"));
      }
    } else if (key == "regimes") {
      m.certify.regimes.clear();
      for (const std::string& name : asStringArray(value, "regimes")) {
        try {
          m.certify.regimes.push_back(parseFaultRegime(name));
        } catch (const std::invalid_argument& e) {
          bad(e.what());
        }
      }
    } else if (key == "schedulers") {
      m.certify.schedulers.clear();
      for (const std::string& name : asStringArray(value, "schedulers")) {
        try {
          m.certify.schedulers.push_back(parseSchedulerKind(name));
        } catch (const std::invalid_argument& e) {
          bad(e.what());
        }
      }
    } else if (key == "runs") {
      m.certify.runs = asU32Field(value, "runs");
    } else if (key == "faultWindow") {
      m.certify.faultWindow = asU64Field(value, "faultWindow");
    } else if (key == "rate") {
      if (!value.isNumber()) bad("rate must be a number");
      m.certify.faultRate = value.asDouble();
    } else if (key == "period") {
      m.certify.faultPeriod = asU64Field(value, "period");
    } else if (key == "corruptFraction") {
      if (!value.isNumber()) bad("corruptFraction must be a number");
      m.certify.corruptFraction = value.asDouble();
    } else if (key == "corruptLeader") {
      if (!value.isBool()) bad("corruptLeader must be a boolean");
      m.certify.corruptLeader = value.asBool();
    } else if (key == "maxInteractions") {
      m.certify.limits.maxInteractions = asU64Field(value, "maxInteractions");
    } else if (key == "checkInterval") {
      m.certify.limits.checkInterval = asU64Field(value, "checkInterval");
    } else if (key == "maxWallMillis") {
      m.certify.limits.maxWallMillis = asU64Field(value, "maxWallMillis");
    } else if (key == "threads") {
      m.certify.threads = asU32Field(value, "threads");
    } else if (key == "shards") {
      m.shards = asU32Field(value, "shards");
      if (m.shards == 0) bad("shards must be >= 1");
    } else if (key == "table1P") {
      const std::uint32_t p = asU32Field(value, "table1P");
      if (p != 0 && (p < 2 || p > 4)) bad("table1P must be 0 or 2..4");
      m.table1P = static_cast<StateId>(p);
    } else if (key == "debugHangUnit") {
      m.debugHangUnit = asU64Field(value, "debugHangUnit");
    } else if (key == "debugCrashUnit") {
      m.debugCrashUnit = asU64Field(value, "debugCrashUnit");
    } else {
      bad("unknown key \"" + key + "\"");
    }
  }
  if (!sawKind) bad("missing kind");
  if (m.certify.runs == 0) bad("runs must be >= 1");
  return m;
}

CampaignManifest loadCampaignManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseCampaignManifest(buf.str());
}

std::string campaignManifestPath(const std::string& outDir) {
  return outDir + "/manifest.json";
}
std::string campaignStatePath(const std::string& outDir) {
  return outDir + "/state.json";
}
std::string campaignEventsPath(const std::string& outDir) {
  return outDir + "/events.jsonl";
}
std::string shardPartialPath(const std::string& outDir, std::uint32_t shard) {
  return outDir + "/shards/shard_" + zeroPadded(shard) + ".partial.jsonl";
}
std::string shardFinalPath(const std::string& outDir, std::uint32_t shard) {
  return outDir + "/shards/shard_" + zeroPadded(shard) + ".jsonl";
}
std::string shardMetricsPath(const std::string& outDir, std::uint32_t shard) {
  return outDir + "/shards/shard_" + zeroPadded(shard) + ".metrics.json";
}
std::string shardEventsPath(const std::string& outDir, std::uint32_t shard) {
  return outDir + "/shards/shard_" + zeroPadded(shard) + ".events.jsonl";
}
std::string mergedUnitsPath(const std::string& outDir) {
  return outDir + "/merged.jsonl";
}
std::string campaignSummaryPath(const std::string& outDir) {
  return outDir + "/summary.json";
}
std::string mergedRobustnessTablePath(const std::string& outDir) {
  return outDir + "/robustness_table.json";
}
std::string mergedTable1Path(const std::string& outDir) {
  return outDir + "/table1.json";
}
std::string campaignHealthPath(const std::string& outDir) {
  return outDir + "/campaign_health.json";
}
std::string campaignTracePath(const std::string& outDir) {
  return outDir + "/campaign_trace.json";
}

void ensureCampaignLayout(const std::string& outDir) {
  std::error_code ec;
  std::filesystem::create_directories(outDir + "/shards", ec);
  if (ec) {
    throw std::runtime_error("campaign: cannot create '" + outDir +
                             "/shards': " + ec.message());
  }
}

}  // namespace ppn
