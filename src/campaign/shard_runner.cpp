#include "campaign/shard_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "analysis/table1.h"
#include "campaign/artifact.h"
#include "naming/registry.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/probes.h"
#include "util/json.h"

namespace ppn {

namespace {

const char* unitKindName(WorkUnit::Kind kind) {
  return kind == WorkUnit::Kind::kRobustness ? "robustness" : "table1";
}

}  // namespace

std::string failedUnitLine(const WorkUnit& unit, const std::string& reason) {
  JsonWriter w;
  w.beginObject();
  w.key("unit").value(unit.id);
  w.key("kind").value(unitKindName(unit.kind));
  w.key("status").value("failed");
  w.key("reason").value(reason);
  w.endObject();
  return w.str();
}

std::string executeWorkUnit(const CampaignManifest& manifest,
                            const WorkUnit& unit, RunObserver* runObserver,
                            ExploreObserver* exploreObserver) {
  if (unit.kind == WorkUnit::Kind::kTable1) {
    Table1Options options;
    options.threads = manifest.certify.threads;
    options.observer = exploreObserver;
    options.exploreIdBase = unit.table1Index * kTable1IdStride;
    options.searchIdBase = 256 + unit.table1Index * kTable1IdStride;
    const Table1CellResult cell =
        runTable1Cell(unit.table1Index, manifest.table1P, options);
    JsonWriter w;
    w.beginObject();
    w.key("unit").value(unit.id);
    w.key("kind").value("table1");
    w.key("index").value(unit.table1Index);
    w.key("status").value("ok");
    w.key("cell").value(cell.cell);
    w.key("claim").value(cell.claim);
    w.key("checked_by").value(cell.mechanism);
    w.key("states").value(cell.states);
    w.key("verdict").value(table1CheckName(cell.verdict));
    w.endObject();
    return w.str();
  }

  RobustnessCell cell;
  std::string status = "ok";
  if (unit.plan.skipped) {
    cell = skippedRobustnessCell(unit.plan);
    status = "skipped";
  } else {
    CertifySpec spec = manifest.certify;
    spec.observer = runObserver;
    const auto proto = makeProtocol(unit.plan.protocol, unit.plan.p);
    const CampaignSpec campaign =
        cellCampaignSpec(spec, unit.plan, unit.runIdBase);
    cell = judgeRobustnessCell(unit.plan, runCampaign(*proto, campaign));
    if (cell.result.degraded) status = "degraded";
  }
  // The cell document is embedded as a STRING so the merge pass can splice
  // the exact bytes into the rebuilt table without a number round-trip.
  JsonWriter cellJson;
  writeRobustnessCellJson(cellJson, cell);
  JsonWriter w;
  w.beginObject();
  w.key("unit").value(unit.id);
  w.key("kind").value("robustness");
  w.key("status").value(status);
  w.key("cell").value(cellJson.str());
  w.endObject();
  return w.str();
}

int runShard(const CampaignManifest& manifest, const std::string& outDir,
             const ShardOptions& options) {
  try {
    const std::string finalPath = shardFinalPath(outDir, options.shardIndex);
    if (readJsonlArtifact(finalPath).ok()) return 0;  // idempotent re-run

    std::vector<WorkUnit> mine;
    for (WorkUnit& unit : expandManifest(manifest)) {
      if (unitShard(manifest, unit.id) == options.shardIndex) {
        mine.push_back(std::move(unit));
      }
    }

    // Recover the checkpoint: completed units survive a crash; a torn final
    // line is dropped and the valid prefix re-published before we append.
    const std::string partialPath =
        shardPartialPath(outDir, options.shardIndex);
    std::unordered_map<std::uint64_t, std::string> completed;
    if (std::filesystem::exists(partialPath)) {
      // Interior corruption (not the torn-tail crash signature) means the
      // checkpoint cannot be trusted at all; units are deterministic, so the
      // safe recovery is to discard it and recompute from scratch.
      bool discard = false;
      JsonlReadResult recovered;
      try {
        recovered = readJsonlTolerant(partialPath);
      } catch (const std::runtime_error& e) {
        std::fprintf(stderr,
                     "shard %u: discarding corrupt checkpoint (%s)\n",
                     options.shardIndex, e.what());
        discard = true;
      }
      std::vector<std::string> kept;
      for (const std::string& line : recovered.lines) {
        const auto value = jsonParse(line);
        const JsonValue* unitField =
            value.has_value() ? value->find("unit") : nullptr;
        const auto unitId =
            unitField != nullptr ? unitField->asU64() : std::nullopt;
        if (!unitId.has_value()) {
          discard = true;  // structurally valid JSON but not a unit line
          completed.clear();
          kept.clear();
          break;
        }
        if (completed.emplace(*unitId, line).second) kept.push_back(line);
      }
      if (discard || recovered.torn || kept.size() != recovered.lines.size()) {
        std::string content;
        for (const std::string& line : kept) {
          content += line;
          content += '\n';
        }
        writeFileAtomic(partialPath, content);
      }
    }

    MetricsRegistry registry;
    MetricsRunObserver runProbe(registry);
    MetricsExploreObserver exploreProbe(registry);
    const CounterHandle unitsExecuted = registry.counter("units_executed");
    const CounterHandle unitsResumed = registry.counter("units_resumed");
    const CounterHandle unitsFailed = registry.counter("units_failed");

    // E25: per-shard event stream for the campaign trace assembler. Written
    // in place (no atomic rename — the assembler reads it even after a kill)
    // and flushed per line; telemetry failure never fails the shard.
    std::unique_ptr<JsonlEventSink> events;
    if (options.emitEvents) {
      try {
        events = std::make_unique<JsonlEventSink>(
            shardEventsPath(outDir, options.shardIndex),
            /*progressIntervalMillis=*/0, /*atomicRename=*/false);
        events->setFlushEveryLine(true);
      } catch (const std::runtime_error& e) {
        std::fprintf(stderr, "shard %u: no event stream (%s)\n",
                     options.shardIndex, e.what());
      }
    }
    MultiObserver runObservers;
    runObservers.add(&runProbe);
    runObservers.add(events.get());
    MultiExploreObserver exploreObservers;
    exploreObservers.add(&exploreProbe);
    exploreObservers.add(events.get());

    std::ofstream append(partialPath, std::ios::app | std::ios::binary);
    if (!append) {
      throw std::runtime_error("cannot open '" + partialPath +
                               "' for appending");
    }
    std::vector<std::string> lines;
    lines.reserve(mine.size());
    for (const WorkUnit& unit : mine) {
      if (const auto it = completed.find(unit.id); it != completed.end()) {
        lines.push_back(it->second);
        registry.add(unitsResumed);
        continue;
      }
      const bool blacklisted =
          std::find(options.failedUnits.begin(), options.failedUnits.end(),
                    unit.id) != options.failedUnits.end();
      if (!blacklisted) {
        // Test hooks: deterministic hang / crash on a designated unit, used
        // by the orchestrator's stall-detection and retry tests.
        if (manifest.debugHangUnit == unit.id) {
          for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
        }
        if (manifest.debugCrashUnit == unit.id) std::abort();
      }
      std::string line;
      if (blacklisted) {
        line = failedUnitLine(unit, "retries exhausted");
        registry.add(unitsFailed);
      } else {
        line = executeWorkUnit(manifest, unit, &runObservers,
                               &exploreObservers);
        registry.add(unitsExecuted);
      }
      append << line << '\n';
      append.flush();
      if (!append) {
        throw std::runtime_error("short write to '" + partialPath + "'");
      }
      lines.push_back(std::move(line));
    }
    append.close();

    writeJsonlArtifact(finalPath, lines);
    writeFileAtomic(shardMetricsPath(outDir, options.shardIndex),
                    registry.toJson() + "\n");
    std::remove(partialPath.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard %u: %s\n", options.shardIndex, e.what());
    return 1;
  }
}

}  // namespace ppn
