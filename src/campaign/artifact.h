// Crash-safe artifact primitives for the campaign orchestration subsystem.
//
// Two durability levels (DESIGN.md, "Checkpoint & atomic artifact writes"):
//  * FINAL artifacts (shard outputs, merged results) are published by writing
//    the complete content to `path + ".tmp"` and renaming onto `path` — a
//    reader never observes a half-written final file — and carry a checksum
//    FOOTER line `{"event":"artifact_footer","crc32":C,"lines":N}` over the
//    body, so silent truncation or bit rot is detected at merge time instead
//    of flowing into the tables.
//  * PARTIAL checkpoints (shard progress, orchestrator state) are append-only
//    JSONL flushed per line; a crash tears at most the final line, which
//    readJsonlTolerant (obs/events.h) drops on resume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppn {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
std::uint32_t crc32(std::string_view data);

/// Writes `content` to `path + ".tmp"` then renames onto `path`. Throws
/// std::runtime_error when the temp file cannot be written or the rename
/// fails (the final path is left untouched in both cases).
void writeFileAtomic(const std::string& path, const std::string& content);

/// The checksum footer for a body of `lines` JSONL lines. `crc` covers the
/// body bytes exactly as written: each line followed by one '\n'.
std::string artifactFooterLine(std::uint32_t crc, std::uint64_t lines);

/// Publishes `lines` + footer as a final JSONL artifact (atomic rename).
void writeJsonlArtifact(const std::string& path,
                        const std::vector<std::string>& lines);

/// A verified final-artifact read: body lines with the footer stripped.
struct ArtifactReadResult {
  std::vector<std::string> lines;
  /// Empty on success. Non-empty describes why the artifact is NOT trusted:
  /// unreadable, missing/unparseable footer, line-count mismatch (truncation)
  /// or checksum mismatch (corruption). The merge pass refuses such inputs.
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Reads and verifies a final JSONL artifact written by writeJsonlArtifact.
ArtifactReadResult readJsonlArtifact(const std::string& path);

}  // namespace ppn
