// Shard runner: executes the work units striped onto one shard (unit id %
// shards), checkpointing after every unit so a crashed or killed shard
// resumes from its last completed unit instead of from scratch.
//
// Durability protocol (see artifact.h):
//  * progress is an append-only partial checkpoint (shards/shard_NNN.
//    partial.jsonl), one JSON line per completed unit, flushed per line. On
//    resume the partial is read tolerantly — a torn final line (the crash
//    signature) is dropped and the valid prefix is re-published atomically
//    before appending continues;
//  * once every unit is done, the full line list is published as the final
//    artifact (shards/shard_NNN.jsonl) with a checksum footer via atomic
//    rename and the partial is deleted. A shard whose final artifact already
//    verifies exits immediately (idempotent re-runs).
//
// Unit result lines are fully deterministic — seeds are pre-drawn by the
// manifest expansion and NO wall-clock quantity is ever written — so the
// bytes a unit contributes are identical across attempts, shard assignments,
// thread counts, and kill/resume cycles. (The one caveat is inherited from
// the sweep itself: a nonzero maxWallMillis lets the watchdog degrade runs
// nondeterministically; determinism-sensitive campaigns run with the
// watchdog off, exactly like the in-process sweeps.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/manifest.h"

namespace ppn {

class ExploreObserver;  // obs/explore_observer.h

struct ShardOptions {
  std::uint32_t shardIndex = 0;
  /// Units the orchestrator blacklisted after exhausting retries: the shard
  /// emits a deterministic {"status":"failed"} line instead of executing
  /// them, so the artifact still covers every unit and the rest of the shard
  /// proceeds (graceful degradation).
  std::vector<std::uint64_t> failedUnits;
  /// Stream run/explore telemetry to shardEventsPath (E25), flushed per line
  /// so the campaign trace assembler sees everything up to a kill. The
  /// stream never affects unit result bytes; a stream that cannot be opened
  /// is skipped, never fatal. Each spawn truncates the previous stream, so
  /// the file always describes the shard's latest attempt.
  bool emitEvents = true;
};

/// Executes the shard to completion. Returns 0 on success (final artifact
/// published), nonzero after printing a diagnostic to stderr. Designed to run
/// in a forked child process but callable in-process for tests.
int runShard(const CampaignManifest& manifest, const std::string& outDir,
             const ShardOptions& options);

/// The JSONL line a completed unit contributes to its shard artifact
/// (exposed for the merge pass and tests):
///   robustness  {"unit":id,"kind":"robustness","status":"ok"|"degraded"|
///                "skipped","cell":"<robustness-cell JSON, embedded as a
///                string so merge can splice the exact bytes>"}
///   table1      {"unit":id,"kind":"table1","index":i,"status":"ok",
///                "cell":...,"claim":...,"checked_by":...,"states":...,
///                "verdict":"pass"|"fail"|"unknown"}
///   failed      {"unit":id,"kind":...,"status":"failed","reason":...}
/// Executes the unit synchronously (this is the per-unit work function).
/// The optional probes feed the shard's metrics artifact; they never affect
/// the returned bytes.
std::string executeWorkUnit(const CampaignManifest& manifest,
                            const WorkUnit& unit,
                            RunObserver* runObserver = nullptr,
                            ExploreObserver* exploreObserver = nullptr);

/// The deterministic line for a blacklisted unit.
std::string failedUnitLine(const WorkUnit& unit, const std::string& reason);

}  // namespace ppn
