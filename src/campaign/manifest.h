// Campaign manifests: a JSON description of an experiment grid — protocols ×
// populations × fault regimes × schedulers (the robustness table, E20/E24)
// plus optionally the Table 1 feasibility cells — expanded deterministically
// into an ordered list of work units.
//
// The expansion is the single source of truth shared by every consumer: the
// in-process sweeps (certifyRecovery / table1_feasibility), the shard runner
// executing a subset of units in its own process, and the merge pass
// rebuilding the tables from shard artifacts. Unit ids are positions in the
// expansion, per-unit seeds are pre-drawn from the cell coordinates (FNV-1a
// inside cellCampaignSpec), and runIdBase bookkeeping matches certifyRecovery
// exactly — so a unit's result bytes depend only on (manifest, unit id),
// never on which shard, process, attempt, or thread count produced them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "faults/certify.h"

namespace ppn {

struct CampaignManifest {
  std::string name = "campaign";
  /// The robustness-table grid (protocols/populations/regimes/schedulers,
  /// fault parameters, per-cell runs, seed, limits, per-shard threads).
  /// certify.observer is ignored — shards wire their own telemetry.
  CertifySpec certify;
  /// Shard processes the unit list is striped over (unit id % shards).
  std::uint32_t shards = 1;
  /// When nonzero, also reproduce Table 1 at this bound (2..4): one work
  /// unit per table1 cell, appended after the robustness units.
  StateId table1P = 0;
  /// Test hooks (absent in normal manifests): a shard HANGS forever before
  /// executing this unit / CRASHES (abort) before executing this unit. They
  /// exercise the orchestrator's stall detector and retry/blacklist paths
  /// deterministically.
  std::optional<std::uint64_t> debugHangUnit;
  std::optional<std::uint64_t> debugCrashUnit;
};

/// One expanded work unit.
struct WorkUnit {
  enum class Kind { kRobustness, kTable1 };

  std::uint64_t id = 0;
  Kind kind = Kind::kRobustness;
  /// kRobustness: the planned cell and the first event runId of its campaign
  /// (advances by certify.runs per executed cell, exactly as certifyRecovery
  /// assigns them; skipped cells do not consume ids).
  RobustnessCellPlan plan;
  std::uint64_t runIdBase = 0;
  /// kTable1: the cell index for analysis/table1.h.
  std::uint32_t table1Index = 0;
};

/// Expands the manifest into its ordered unit list: all robustness cells in
/// planRobustnessCells order (skipped cells included, as trivially completed
/// units, so merged artifacts cover the full grid), then the table1 cells.
std::vector<WorkUnit> expandManifest(const CampaignManifest& manifest);

/// The shard a unit is striped onto.
inline std::uint32_t unitShard(const CampaignManifest& m, std::uint64_t unitId) {
  return static_cast<std::uint32_t>(unitId % std::max(1u, m.shards));
}

/// Serializes the manifest as a canonical JSON document (round-trips through
/// parseCampaignManifest bit-exactly; used both for files and for the
/// resume-time identity check).
std::string manifestToJson(const CampaignManifest& manifest);

/// Parses a manifest document. Unknown keys are rejected (a typo silently
/// changing the grid is worse than an error); missing keys keep defaults.
/// Throws std::runtime_error with a descriptive message on any problem.
CampaignManifest parseCampaignManifest(const std::string& json);

/// Reads and parses a manifest file (throws std::runtime_error).
CampaignManifest loadCampaignManifest(const std::string& path);

// Output-directory layout. Everything a campaign produces lives under one
// directory: the manifest copy, the orchestrator checkpoint, per-shard
// partial checkpoints and final artifacts, the event stream, and the merged
// outputs.
std::string campaignManifestPath(const std::string& outDir);
std::string campaignStatePath(const std::string& outDir);
std::string campaignEventsPath(const std::string& outDir);
std::string shardPartialPath(const std::string& outDir, std::uint32_t shard);
std::string shardFinalPath(const std::string& outDir, std::uint32_t shard);
std::string shardMetricsPath(const std::string& outDir, std::uint32_t shard);
/// Per-shard JSONL event stream (E25): written flush-per-line from inside
/// the shard process, merged into the campaign trace by
/// discoverCampaignTraceInputs/assembleCampaignTrace (obs/campaign_trace.h).
std::string shardEventsPath(const std::string& outDir, std::uint32_t shard);
std::string mergedUnitsPath(const std::string& outDir);
std::string campaignSummaryPath(const std::string& outDir);
std::string mergedRobustnessTablePath(const std::string& outDir);
std::string mergedTable1Path(const std::string& outDir);
/// E25 observability outputs: the checksummed health report (merge pass and
/// `campaign_runner status --health`) and the default assembled-trace path.
std::string campaignHealthPath(const std::string& outDir);
std::string campaignTracePath(const std::string& outDir);

/// Creates `outDir` and its shards/ subdirectory (throws std::runtime_error).
void ensureCampaignLayout(const std::string& outDir);

}  // namespace ppn
