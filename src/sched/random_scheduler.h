// Uniform and weighted random pair schedulers (global fairness w.p. 1).
#pragma once

#include <stdexcept>
#include <vector>

#include "sched/scheduler.h"
#include "util/rng.h"

namespace ppn {

/// Selects an ordered pair of distinct participants uniformly at random each
/// step. This is the classical "random scheduler" of the randomized
/// population-protocol literature and is globally fair with probability 1.
class RandomScheduler final : public Scheduler {
 public:
  RandomScheduler(std::uint32_t numParticipants, std::uint64_t seed)
      : n_(numParticipants), rng_(seed) {
    if (n_ < 2) throw std::invalid_argument("need at least 2 participants");
  }

  Interaction next() override {
    const auto a = static_cast<std::uint32_t>(rng_.below(n_));
    auto b = static_cast<std::uint32_t>(rng_.below(n_ - 1));
    if (b >= a) ++b;
    return Interaction{a, b};
  }

  /// Same stream as repeated next(), devirtualized into one tight loop (the
  /// class is final, so the next() calls below inline).
  void fill(Interaction* out, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) out[i] = next();
  }

  std::string name() const override { return "random-uniform"; }

 private:
  std::uint32_t n_;
  Rng rng_;
};

/// Selects pairs with per-participant weights (each endpoint drawn from the
/// weight distribution, the second conditioned on being different). Any
/// strictly positive weight vector keeps every pair's probability positive,
/// so the scheduler remains globally fair w.p. 1 — used by the scheduler
/// ablation bench to show the protocols' correctness does not depend on
/// uniformity.
class SkewedRandomScheduler final : public Scheduler {
 public:
  SkewedRandomScheduler(std::vector<double> weights, std::uint64_t seed);

  Interaction next() override;
  std::string name() const override { return "random-skewed"; }

 private:
  std::uint32_t drawExcluding(std::uint32_t excluded);

  std::vector<double> cumulative_;  // prefix sums of weights
  Rng rng_;
};

}  // namespace ppn
