// Adversarial schedulers reproducing the executions constructed inside the
// paper's impossibility proofs.
//
//  * IsolationScheduler — the "hidden agent" of Theorem 11 / Lemma 5: one
//    designated agent is kept out of all interactions for a configurable
//    number of steps while the rest of the population runs (and typically
//    converges as if the population were smaller); afterwards the agent is
//    released. Releasing eventually keeps the schedule weakly fair.
//  * CallbackScheduler — a fully general configuration-aware adversary: a
//    strategy function inspects the current configuration and picks the next
//    pair. Used for the Section 2 black/white example (keeping the black
//    token jumping forever) and for hand-crafted proof replays.
#pragma once

#include <functional>
#include <memory>

#include "core/configuration.h"
#include "sched/scheduler.h"

namespace ppn {

class IsolationScheduler final : public Scheduler {
 public:
  /// Wraps `inner` (owned); interactions involving `isolated` are filtered
  /// out (re-drawn) for the first `isolationSteps` emitted interactions.
  IsolationScheduler(std::unique_ptr<Scheduler> inner, std::uint32_t isolated,
                     std::uint64_t isolationSteps)
      : inner_(std::move(inner)),
        isolated_(isolated),
        remaining_(isolationSteps) {}

  Interaction next() override {
    if (remaining_ == 0) return inner_->next();
    --remaining_;
    for (;;) {
      const Interaction it = inner_->next();
      if (it.initiator != isolated_ && it.responder != isolated_) return it;
    }
  }

  std::string name() const override {
    return "isolate(" + inner_->name() + ")";
  }

  void reset() override { inner_->reset(); }

  bool stillIsolating() const { return remaining_ > 0; }

 private:
  std::unique_ptr<Scheduler> inner_;
  std::uint32_t isolated_;
  std::uint64_t remaining_;
};

class CallbackScheduler final : public Scheduler {
 public:
  /// `strategy(t)` returns the t-th interaction (t starts at 0). The strategy
  /// typically captures a pointer to the engine to inspect the live
  /// configuration.
  CallbackScheduler(std::string schedulerName,
                    std::function<Interaction(std::uint64_t)> strategy)
      : name_(std::move(schedulerName)), strategy_(std::move(strategy)) {}

  Interaction next() override { return strategy_(t_++); }
  std::string name() const override { return name_; }
  void reset() override { t_ = 0; }

 private:
  std::string name_;
  std::function<Interaction(std::uint64_t)> strategy_;
  std::uint64_t t_ = 0;
};

}  // namespace ppn
