// Schedulers constrained to an interaction graph: only adjacent participants
// may meet. GraphRandomScheduler picks a uniform random edge each step
// (globally fair w.p. 1 *within the topology*); GraphRoundRobinScheduler
// cycles the edge list deterministically (weakly fair within the topology:
// every EDGE occurs infinitely often).
#pragma once

#include <stdexcept>

#include "core/interaction_graph.h"
#include "sched/scheduler.h"
#include "util/rng.h"

namespace ppn {

class GraphRandomScheduler final : public Scheduler {
 public:
  GraphRandomScheduler(InteractionGraph graph, std::uint64_t seed)
      : graph_(std::move(graph)), rng_(seed) {
    if (graph_.numEdges() == 0) {
      throw std::invalid_argument("GraphRandomScheduler: no edges");
    }
  }

  Interaction next() override {
    const auto& [a, b] = graph_.edges()[rng_.below(graph_.numEdges())];
    // Uniform random orientation (matters only for asymmetric rules).
    return rng_.chance(0.5) ? Interaction{a, b} : Interaction{b, a};
  }

  std::string name() const override {
    return "graph-random/" + graph_.describe();
  }

  const InteractionGraph& graph() const { return graph_; }

 private:
  InteractionGraph graph_;
  Rng rng_;
};

class GraphRoundRobinScheduler final : public Scheduler {
 public:
  explicit GraphRoundRobinScheduler(InteractionGraph graph)
      : graph_(std::move(graph)) {
    if (graph_.numEdges() == 0) {
      throw std::invalid_argument("GraphRoundRobinScheduler: no edges");
    }
  }

  Interaction next() override {
    const auto& [a, b] = graph_.edges()[index_];
    ++index_;
    if (index_ == graph_.numEdges()) {
      index_ = 0;
      flip_ = !flip_;  // alternate orientation between laps
    }
    return flip_ ? Interaction{b, a} : Interaction{a, b};
  }

  std::string name() const override {
    return "graph-round-robin/" + graph_.describe();
  }

  void reset() override {
    index_ = 0;
    flip_ = false;
  }

  const InteractionGraph& graph() const { return graph_; }

 private:
  InteractionGraph graph_;
  std::size_t index_ = 0;
  bool flip_ = false;
};

}  // namespace ppn
