#include "sched/deterministic_schedulers.h"

#include <algorithm>

namespace ppn {

TournamentScheduler::TournamentScheduler(std::uint32_t numParticipants) {
  if (numParticipants < 2) {
    throw std::invalid_argument("need at least 2 participants");
  }
  odd_ = (numParticipants % 2) != 0;
  const std::uint32_t k = odd_ ? numParticipants + 1 : numParticipants;
  slots_.resize(k);
  for (std::uint32_t i = 0; i < k; ++i) slots_[i] = i;  // k-1 is the bye slot
  buildRoundMatches();
}

void TournamentScheduler::buildRoundMatches() {
  roundMatches_.clear();
  const std::size_t k = slots_.size();
  const std::uint32_t bye =
      odd_ ? static_cast<std::uint32_t>(k - 1) : kInvalidState;
  for (std::size_t i = 0; i < k / 2; ++i) {
    const std::uint32_t a = slots_[i];
    const std::uint32_t b = slots_[k - 1 - i];
    if (a == bye || b == bye) continue;  // sit-out in odd populations
    roundMatches_.push_back(Interaction{a, b});
  }
  matchIndex_ = 0;
}

void TournamentScheduler::rotate() {
  // Standard circle method: slot 0 is fixed, the rest rotate by one.
  if (slots_.size() > 2) {
    std::rotate(slots_.begin() + 1, slots_.end() - 1, slots_.end());
  }
}

Interaction TournamentScheduler::next() {
  if (matchIndex_ >= roundMatches_.size()) {
    rotate();
    buildRoundMatches();
  }
  return roundMatches_[matchIndex_++];
}

void TournamentScheduler::reset() {
  const std::size_t k = slots_.size();
  for (std::uint32_t i = 0; i < k; ++i) slots_[i] = i;
  buildRoundMatches();
}

}  // namespace ppn
