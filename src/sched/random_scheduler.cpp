#include "sched/random_scheduler.h"

#include <algorithm>

namespace ppn {

SkewedRandomScheduler::SkewedRandomScheduler(std::vector<double> weights,
                                             std::uint64_t seed)
    : rng_(seed) {
  if (weights.size() < 2) {
    throw std::invalid_argument("need at least 2 participants");
  }
  double sum = 0.0;
  cumulative_.reserve(weights.size());
  for (const double w : weights) {
    if (w <= 0.0) {
      throw std::invalid_argument(
          "weights must be strictly positive to preserve global fairness");
    }
    sum += w;
    cumulative_.push_back(sum);
  }
}

std::uint32_t SkewedRandomScheduler::drawExcluding(std::uint32_t excluded) {
  // Rejection sampling: with strictly positive weights the expected number of
  // retries is bounded by 1/(1 - w_excluded/total), fine for our workloads.
  for (;;) {
    const double u = rng_.uniform01() * cumulative_.back();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const auto idx = static_cast<std::uint32_t>(
        std::distance(cumulative_.begin(), it));
    const auto clamped = std::min(
        idx, static_cast<std::uint32_t>(cumulative_.size() - 1));
    if (clamped != excluded) return clamped;
  }
}

Interaction SkewedRandomScheduler::next() {
  const std::uint32_t a =
      drawExcluding(static_cast<std::uint32_t>(cumulative_.size()));
  const std::uint32_t b = drawExcluding(a);
  return Interaction{a, b};
}

}  // namespace ppn
