// The paper's *reduced executions* (Section 3.1), as a scheduler.
//
// In a reduced execution, "each time a pair of s != m homonyms appears, it
// is immediately reduced to m": whenever two mobile agents share a non-sink
// state, the adversary schedules that pair (repeatedly, until the homonyms
// are gone); only then do other interactions proceed. The paper's
// Corollary 7 observes that forcing reductions never breaks weak fairness —
// which this wrapper preserves by delegating to a weakly fair inner
// scheduler between reduction bursts (interactions are inserted, never
// dropped, so every inner pair still occurs infinitely often).
#pragma once

#include <memory>
#include <optional>

#include "core/engine.h"
#include "sched/scheduler.h"

namespace ppn {

class ReducingScheduler final : public Scheduler {
 public:
  /// Watches `engine`'s live configuration (non-owning; the engine must
  /// outlive the scheduler and be the one consuming next()). `sink` is the
  /// state m that reductions target (0 for Protocols 1-3).
  ReducingScheduler(const Engine& engine, std::unique_ptr<Scheduler> inner,
                    StateId sink)
      : engine_(&engine), inner_(std::move(inner)), sink_(sink) {}

  Interaction next() override {
    if (const auto pair = findReduciblePair()) return *pair;
    return inner_->next();
  }

  std::string name() const override { return "reducing(" + inner_->name() + ")"; }

  void reset() override { inner_->reset(); }

  /// The pair of non-sink homonyms that must be reduced next, if any — also
  /// usable by tests to assert the reduced-execution invariant.
  std::optional<Interaction> findReduciblePair() const {
    const Configuration& c = engine_->config();
    const auto n = c.numMobile();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (c.mobile[i] == sink_) continue;
      for (std::uint32_t j = i + 1; j < n; ++j) {
        if (c.mobile[i] == c.mobile[j]) return Interaction{i, j};
      }
    }
    return std::nullopt;
  }

 private:
  const Engine* engine_;
  std::unique_ptr<Scheduler> inner_;
  StateId sink_;
};

}  // namespace ppn
