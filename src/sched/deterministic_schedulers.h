// Deterministic weakly fair schedulers.
//
// RoundRobinScheduler cycles through every ordered pair in lexicographic
// order; TournamentScheduler plays rounds of perfect matchings produced by
// the classical circle method, mirroring the phase structure used in the
// proof of Proposition 1 ("the agents are matched in pairs and interact
// accordingly"). Both guarantee every pair of participants interacts
// infinitely often — weak fairness — with no randomness at all.
#pragma once

#include <stdexcept>
#include <vector>

#include "sched/scheduler.h"

namespace ppn {

/// All ordered pairs (i, j), i != j, in a fixed cyclic order. The cycle
/// length is M(M-1) for M participants.
class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(std::uint32_t numParticipants)
      : n_(numParticipants) {
    if (n_ < 2) throw std::invalid_argument("need at least 2 participants");
  }

  Interaction next() override {
    const Interaction out{i_, j_};
    advance();
    return out;
  }

  std::string name() const override { return "round-robin"; }

  void reset() override {
    i_ = 0;
    j_ = 1;
  }

 private:
  void advance() {
    ++j_;
    if (j_ == i_) ++j_;
    if (j_ >= n_) {
      j_ = 0;
      ++i_;
      if (i_ >= n_) i_ = 0;
      if (j_ == i_) j_ = 1;
    }
  }

  std::uint32_t n_;
  std::uint32_t i_ = 0;
  std::uint32_t j_ = 1;
};

/// Circle-method round-robin tournament: participants are matched in rounds
/// of (near-)perfect matchings; each round's matches are emitted one by one.
/// For an even number of participants every agent is matched every round —
/// exactly the phase structure of Proposition 1's adversarial execution. For
/// an odd number, one participant sits out each round. Every pair meets once
/// per M-1 (even M) or M (odd M) rounds, so the schedule is weakly fair.
class TournamentScheduler final : public Scheduler {
 public:
  explicit TournamentScheduler(std::uint32_t numParticipants);

  Interaction next() override;
  std::string name() const override { return "tournament"; }
  void reset() override;

  /// Number of matches per round (for tests/benches).
  std::uint32_t matchesPerRound() const {
    return static_cast<std::uint32_t>(slots_.size() / 2);
  }

 private:
  void buildRoundMatches();
  void rotate();

  std::vector<std::uint32_t> slots_;  // circle arrangement; slot 0 is fixed
  std::vector<Interaction> roundMatches_;
  std::size_t matchIndex_ = 0;
  bool odd_ = false;
};

}  // namespace ppn
