// Schedulers realize the paper's fairness conditions (Section 2).
//
//  * Global fairness — "if C occurs infinitely often and C -> C', then C'
//    occurs infinitely often" — is realized with probability 1 by any
//    scheduler that gives every ordered pair a positive probability at every
//    step (RandomScheduler, SkewedRandomScheduler); the paper cites [39] for
//    this equivalence.
//  * Weak fairness — every pair of agents interacts infinitely often — is
//    realized deterministically by RoundRobinScheduler and
//    TournamentScheduler, and is the arena for the adversarial schedules of
//    the impossibility proofs (see adversary.h).
//
// A scheduler produces ordered participant pairs (initiator, responder) using
// the engine's indexing convention: mobile agents 0..N-1, leader (if any) N.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/types.h"

namespace ppn {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// The next interaction to execute.
  virtual Interaction next() = 0;

  /// Fills out[0..n) with the next n interactions — semantically identical
  /// to n calls of next(), always producing the same sequence. Hot
  /// schedulers override this so the engine's compiled burst kernel pays one
  /// virtual dispatch per block instead of one per interaction.
  virtual void fill(Interaction* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next();
  }

  /// Human-readable name for tables.
  virtual std::string name() const = 0;

  /// Restart the schedule from its beginning (meaningful for deterministic
  /// schedulers; random schedulers keep their stream).
  virtual void reset() {}
};

}  // namespace ppn
