#include "tasks/bipartition.h"

#include <cstdlib>

namespace ppn {

bool isBalancedBipartition(const Configuration& c) {
  std::int64_t a = 0;
  std::int64_t b = 0;
  for (const StateId s : c.mobile) {
    if (s == LeaderBipartition::kSideA) {
      ++a;
    } else if (s == LeaderBipartition::kSideB) {
      ++b;
    } else {
      return false;  // unassigned agent
    }
  }
  return std::llabs(a - b) <= 1;
}

}  // namespace ppn
