// Leader election as a by-product of naming — the composition the paper's
// introduction points at ("naming is frequently performed as a by-product or
// as an important design module", citing leader election [19]).
//
// When the exact population size is known (N = P), a converged naming
// assigns every name in {0..P-1} to exactly one agent, so "I hold name 0" is
// a locally checkable leader predicate. Pairing this with the
// self-stabilizing asymmetric naming protocol (Prop 12) yields
// self-stabilizing leader election with exactly N states and exact knowledge
// of N — matching the necessity results of Cai, Izumi, Wada [19] that the
// paper builds on.
#pragma once

#include "core/configuration.h"
#include "core/protocol.h"

namespace ppn {

/// The elected-leader predicate over a naming protocol's configurations:
/// exactly one agent holds `leaderName`.
bool uniqueLeaderElected(const Configuration& c, StateId leaderName = 0);

/// Stabilizing leader-election problem statement for the checkers: the
/// leaderName-holder must be unique AND stable (no agent may drift in or out
/// of the leader name once converged). With `requireMobileQuiescence` the
/// whole naming must freeze, which subsumes leader stability.
struct LeaderElectionSpec {
  StateId leaderName = 0;
};

}  // namespace ppn
