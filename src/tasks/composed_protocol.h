// Parallel composition of population protocols — the standard product
// construction. Both component protocols run independently on every
// interaction; the composed state space is the product, which is exactly how
// the paper's motivation plays out: naming is "frequently performed as a
// by-product or as an important design module" of larger protocols, and
// composing it with a payload task multiplies the state budget — the reason
// exact (P vs P+1) state optimality matters.
#pragma once

#include <memory>

#include "core/protocol.h"

namespace ppn {

class ComposedProtocol final : public Protocol {
 public:
  /// Composes a and b (non-owning; both must outlive the composition). At
  /// most one component may have a leader (the composed leader state is that
  /// component's). Throws std::invalid_argument if both have leaders.
  ComposedProtocol(const Protocol& a, const Protocol& b);

  std::string name() const override;
  StateId numMobileStates() const override { return qa_ * qb_; }
  bool hasLeader() const override;
  bool isSymmetric() const override {
    return a_->isSymmetric() && b_->isSymmetric();
  }

  MobilePair mobileDelta(StateId initiator, StateId responder) const override;
  LeaderResult leaderDelta(LeaderStateId leader, StateId mobile) const override;

  std::optional<StateId> uniformMobileInit() const override;
  std::optional<LeaderStateId> initialLeaderState() const override;
  std::vector<LeaderStateId> allLeaderStates() const override;
  std::string describeLeaderState(LeaderStateId leader) const override;

  /// Component state accessors: composed state = a * |Q_b| + b.
  StateId componentA(StateId composed) const { return composed / qb_; }
  StateId componentB(StateId composed) const { return composed % qb_; }
  StateId compose(StateId a, StateId b) const { return a * qb_ + b; }

  const Protocol& protocolA() const { return *a_; }
  const Protocol& protocolB() const { return *b_; }

 private:
  const Protocol* a_;
  const Protocol* b_;
  StateId qa_;
  StateId qb_;
};

}  // namespace ppn
