// Uniform bipartition — the problem of the paper's reference [55] (Yasumi,
// Ooshita, Yamaguchi, Inoue, OPODIS 2017), which the introduction cites for
// "self-stabilizing bipartition is impossible under weak fairness using a
// constant number of states". Included here because its analysis style
// (feasibility per assumption combination) directly parallels the paper's,
// and because our exhaustive search machinery can re-derive the tiny-state
// impossibility instances.
//
// Positive construction (initialized leader, uniform agents, weak fairness,
// 3 mobile states): agents boot in `kUnassigned`; the leader holds one
// parity bit and assigns sides alternately — the classic base-station
// solution. Converges to |#A - #B| <= 1 with all agents assigned.
#pragma once

#include <vector>

#include "core/configuration.h"
#include "core/protocol.h"

namespace ppn {

class LeaderBipartition final : public Protocol {
 public:
  static constexpr StateId kSideA = 0;
  static constexpr StateId kSideB = 1;
  static constexpr StateId kUnassigned = 2;

  std::string name() const override { return "leader-bipartition"; }
  StateId numMobileStates() const override { return 3; }
  bool hasLeader() const override { return true; }
  bool isSymmetric() const override { return true; }

  MobilePair mobileDelta(StateId initiator, StateId responder) const override {
    return MobilePair{initiator, responder};  // all mobile-mobile null
  }

  LeaderResult leaderDelta(LeaderStateId leader, StateId mobile) const override {
    if (mobile != kUnassigned) return LeaderResult{leader, mobile};
    // leader bit 0 -> assign A, flip; bit 1 -> assign B, flip.
    const StateId side = (leader == 0) ? kSideA : kSideB;
    return LeaderResult{leader ^ 1u, side};
  }

  std::optional<StateId> uniformMobileInit() const override {
    return kUnassigned;
  }
  std::optional<LeaderStateId> initialLeaderState() const override {
    return LeaderStateId{0};
  }
  std::vector<LeaderStateId> allLeaderStates() const override { return {0, 1}; }
  std::string describeLeaderState(LeaderStateId leader) const override {
    return leader == 0 ? "next=A" : "next=B";
  }
};

/// The bipartition predicate: everyone assigned and the sides balanced to
/// within one agent.
bool isBalancedBipartition(const Configuration& c);

}  // namespace ppn
