#include "tasks/majority.h"

namespace ppn {

MobilePair MajorityProtocol::mobileDelta(StateId initiator,
                                         StateId responder) const {
  auto rule = [](StateId x, StateId y) -> std::pair<StateId, StateId> {
    // Strong opposites annihilate into weak (difference preserved).
    if (x == kStrongA && y == kStrongB) return {kWeakA, kWeakB};
    if (x == kStrongB && y == kStrongA) return {kWeakB, kWeakA};
    // Strong converts opposite weak.
    if (x == kStrongA && y == kWeakB) return {kStrongA, kWeakA};
    if (x == kWeakB && y == kStrongA) return {kWeakA, kStrongA};
    if (x == kStrongB && y == kWeakA) return {kStrongB, kWeakB};
    if (x == kWeakA && y == kStrongB) return {kWeakB, kStrongB};
    return {x, y};  // null
  };
  const auto [i, r] = rule(initiator, responder);
  return MobilePair{i, r};
}

std::int64_t opinionBalance(const Configuration& c) {
  std::int64_t balance = 0;
  for (const StateId s : c.mobile) {
    if (s == MajorityProtocol::kStrongA) ++balance;
    if (s == MajorityProtocol::kStrongB) --balance;
  }
  return balance;
}

bool allOpinionA(const Configuration& c) {
  for (const StateId s : c.mobile) {
    if (!MajorityProtocol::opinionA(s)) return false;
  }
  return true;
}

bool allOpinionB(const Configuration& c) {
  for (const StateId s : c.mobile) {
    if (MajorityProtocol::opinionA(s)) return false;
  }
  return true;
}

}  // namespace ppn
