#include "tasks/leader_election.h"

namespace ppn {

bool uniqueLeaderElected(const Configuration& c, StateId leaderName) {
  return c.multiplicity(leaderName) == 1;
}

}  // namespace ppn
