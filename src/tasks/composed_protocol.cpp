#include "tasks/composed_protocol.h"

#include <stdexcept>

namespace ppn {

ComposedProtocol::ComposedProtocol(const Protocol& a, const Protocol& b)
    : a_(&a), b_(&b), qa_(a.numMobileStates()), qb_(b.numMobileStates()) {
  if (a.hasLeader() && b.hasLeader()) {
    throw std::invalid_argument(
        "ComposedProtocol: at most one component may have a leader");
  }
}

std::string ComposedProtocol::name() const {
  return a_->name() + " || " + b_->name();
}

bool ComposedProtocol::hasLeader() const {
  return a_->hasLeader() || b_->hasLeader();
}

MobilePair ComposedProtocol::mobileDelta(StateId initiator,
                                         StateId responder) const {
  const MobilePair ra =
      a_->mobileDelta(componentA(initiator), componentA(responder));
  const MobilePair rb =
      b_->mobileDelta(componentB(initiator), componentB(responder));
  return MobilePair{compose(ra.initiator, rb.initiator),
                    compose(ra.responder, rb.responder)};
}

LeaderResult ComposedProtocol::leaderDelta(LeaderStateId leader,
                                           StateId mobile) const {
  // The leaderless component's state is untouched by leader interactions.
  if (a_->hasLeader()) {
    const LeaderResult r = a_->leaderDelta(leader, componentA(mobile));
    return LeaderResult{r.leader, compose(r.mobile, componentB(mobile))};
  }
  const LeaderResult r = b_->leaderDelta(leader, componentB(mobile));
  return LeaderResult{r.leader, compose(componentA(mobile), r.mobile)};
}

std::optional<StateId> ComposedProtocol::uniformMobileInit() const {
  const auto ia = a_->uniformMobileInit();
  const auto ib = b_->uniformMobileInit();
  if (!ia.has_value() || !ib.has_value()) return std::nullopt;
  return compose(*ia, *ib);
}

std::optional<LeaderStateId> ComposedProtocol::initialLeaderState() const {
  if (a_->hasLeader()) return a_->initialLeaderState();
  if (b_->hasLeader()) return b_->initialLeaderState();
  return std::nullopt;
}

std::vector<LeaderStateId> ComposedProtocol::allLeaderStates() const {
  if (a_->hasLeader()) return a_->allLeaderStates();
  if (b_->hasLeader()) return b_->allLeaderStates();
  return {};
}

std::string ComposedProtocol::describeLeaderState(LeaderStateId leader) const {
  if (a_->hasLeader()) return a_->describeLeaderState(leader);
  if (b_->hasLeader()) return b_->describeLeaderState(leader);
  return Protocol::describeLeaderState(leader);
}

}  // namespace ppn
