// Exact majority — one of the "other forms of symmetry breaking" the paper's
// conclusion lists as future work, implemented here as a payload task to
// compose with naming and to exercise the substrate beyond naming.
//
// The classical 4-state protocol (Bénézit–Thiran–Vetterli style): agents are
// strong or weak supporters of opinion A or B. Strong opposites annihilate
// into weak ones (preserving the strong-count difference); strong agents
// convert weak agents they meet. With a strict initial majority, the losing
// side's strong agents are exhausted and the winners convert everyone. A tie
// leaves only weak agents — provably unresolvable with 4 states.
#pragma once

#include "core/configuration.h"
#include "core/protocol.h"

namespace ppn {

class MajorityProtocol final : public Protocol {
 public:
  static constexpr StateId kStrongA = 0;
  static constexpr StateId kStrongB = 1;
  static constexpr StateId kWeakA = 2;
  static constexpr StateId kWeakB = 3;

  std::string name() const override { return "majority-4state"; }
  StateId numMobileStates() const override { return 4; }
  bool isSymmetric() const override { return true; }
  MobilePair mobileDelta(StateId initiator, StateId responder) const override;

  /// Opinion carried by a state (true = A).
  static bool opinionA(StateId s) { return s == kStrongA || s == kWeakA; }
  static bool isStrong(StateId s) { return s == kStrongA || s == kStrongB; }
};

/// Signed strong-count difference #A - #B over initial opinions of `c`
/// (every state counts with its opinion; the protocol preserves the strong
/// difference and the library uses it to determine the expected winner).
std::int64_t opinionBalance(const Configuration& c);

/// True when every agent currently carries opinion A (resp. B).
bool allOpinionA(const Configuration& c);
bool allOpinionB(const Configuration& c);

}  // namespace ppn
