#include "obs/trace.h"

#include <fstream>

#include "util/json.h"

namespace ppn {

FlightRecorder::FlightRecorder(std::size_t capacity, std::uint64_t stride,
                               std::string dumpPath)
    : capacity_(capacity == 0 ? 1 : capacity),
      stride_(stride == 0 ? 1 : stride),
      dumpPath_(std::move(dumpPath)) {}

void FlightRecorder::record(ConvergenceSample sample) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[static_cast<std::size_t>(total_ % capacity_)] = std::move(sample);
  }
  ++total_;
}

std::size_t FlightRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t FlightRecorder::totalRecorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<ConvergenceSample> FlightRecorder::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<ConvergenceSample> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: storage order is recording order
  } else {
    const std::size_t head = static_cast<std::size_t>(total_ % capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

void FlightRecorder::dump(const std::string& reason, std::ostream& out) const {
  const std::vector<ConvergenceSample> snap = samples();
  std::uint64_t total;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    total = total_;
  }
  {
    JsonWriter w;
    w.beginObject();
    w.key("event").value("flight_recorder_dump");
    w.key("reason").value(reason);
    w.key("capacity").value(static_cast<std::uint64_t>(capacity_));
    w.key("stride").value(stride_);
    w.key("total_recorded").value(total);
    w.key("retained").value(static_cast<std::uint64_t>(snap.size()));
    w.endObject();
    out << w.str() << '\n';
  }
  for (const ConvergenceSample& s : snap) {
    JsonWriter w;
    w.beginObject();
    w.key("event").value("convergence_sample");
    w.key("run").value(s.runId);
    w.key("at").value(s.interactions);
    w.key("distinct_names").value(s.distinctNames);
    w.key("collisions").value(s.collisions);
    w.key("occupancy").beginArray();
    for (const std::uint32_t c : s.occupancy) w.value(c);
    w.endArray();
    w.endObject();
    out << w.str() << '\n';
  }
  out.flush();
}

bool FlightRecorder::dumpToConfiguredPath(const std::string& reason) const {
  if (dumpPath_.empty()) return false;
  std::ofstream out(dumpPath_, std::ios::trunc);
  if (!out) return false;
  dump(reason, out);
  return static_cast<bool>(out);
}

ChromeTraceWriter::ChromeTraceWriter(std::size_t maxEvents)
    : maxEvents_(maxEvents), start_(std::chrono::steady_clock::now()) {}

double ChromeTraceWriter::nowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

// Caller holds mu_.
std::uint32_t ChromeTraceWriter::tidLocked() {
  const auto id = std::this_thread::get_id();
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const auto tid = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace(id, tid);
  Event meta;
  meta.name = "thread_name";
  meta.ph = 'M';
  meta.tid = tid;
  meta.threadName = "worker-" + std::to_string(tid);
  if (events_.size() < maxEvents_) events_.push_back(std::move(meta));
  return tid;
}

// Caller holds mu_.
void ChromeTraceWriter::push(Event e) {
  if (events_.size() >= maxEvents_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::begin(const std::string& name, const Args& args) {
  const double ts = nowMicros();
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = name;
  e.ph = 'B';
  e.tsMicros = ts;
  e.tid = tidLocked();
  e.args = args;
  push(std::move(e));
}

void ChromeTraceWriter::end(const std::string& name) {
  const double ts = nowMicros();
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = name;
  e.ph = 'E';
  e.tsMicros = ts;
  e.tid = tidLocked();
  push(std::move(e));
}

void ChromeTraceWriter::instant(const std::string& name, const Args& args) {
  const double ts = nowMicros();
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = name;
  e.ph = 'i';
  e.tsMicros = ts;
  e.tid = tidLocked();
  e.args = args;
  push(std::move(e));
}

void ChromeTraceWriter::counter(const std::string& name, double value) {
  const double ts = nowMicros();
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = name;
  e.ph = 'C';
  e.tsMicros = ts;
  e.tid = tidLocked();
  e.counterValue = value;
  push(std::move(e));
}

void ChromeTraceWriter::setThreadName(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = "thread_name";
  e.ph = 'M';
  e.tid = tidLocked();
  e.threadName = name;
  push(std::move(e));
}

void ChromeTraceWriter::beginOn(std::uint32_t pid, std::uint32_t tid,
                                double tsMicros, const std::string& name,
                                const Args& args) {
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = name;
  e.ph = 'B';
  e.tsMicros = tsMicros;
  e.pid = pid;
  e.tid = tid;
  e.args = args;
  push(std::move(e));
}

void ChromeTraceWriter::endOn(std::uint32_t pid, std::uint32_t tid,
                              double tsMicros, const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = name;
  e.ph = 'E';
  e.tsMicros = tsMicros;
  e.pid = pid;
  e.tid = tid;
  push(std::move(e));
}

void ChromeTraceWriter::instantOn(std::uint32_t pid, std::uint32_t tid,
                                  double tsMicros, const std::string& name,
                                  const Args& args) {
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = name;
  e.ph = 'i';
  e.tsMicros = tsMicros;
  e.pid = pid;
  e.tid = tid;
  e.args = args;
  push(std::move(e));
}

void ChromeTraceWriter::counterOn(std::uint32_t pid, std::uint32_t tid,
                                  double tsMicros, const std::string& name,
                                  double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = name;
  e.ph = 'C';
  e.tsMicros = tsMicros;
  e.pid = pid;
  e.tid = tid;
  e.counterValue = value;
  push(std::move(e));
}

void ChromeTraceWriter::setTrackName(std::uint32_t pid, std::uint32_t tid,
                                     const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = "thread_name";
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.threadName = name;
  push(std::move(e));
}

void ChromeTraceWriter::setProcessName(std::uint32_t pid,
                                       const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.name = "process_name";
  e.ph = 'M';
  e.pid = pid;
  e.tid = 0;
  e.threadName = name;
  push(std::move(e));
}

std::size_t ChromeTraceWriter::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t ChromeTraceWriter::droppedEvents() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void ChromeTraceWriter::write(std::ostream& out) const {
  std::vector<Event> snap;
  std::uint64_t dropped;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snap = events_;
    dropped = dropped_;
  }
  JsonWriter w;
  w.beginObject();
  w.key("traceEvents").beginArray();
  for (const Event& e : snap) {
    w.beginObject();
    // Metadata entries carry a reserved name ("thread_name"/"process_name",
    // stored in e.name); the human-readable label lives in args.name.
    w.key("name").value(e.name);
    w.key("ph").value(std::string(1, e.ph));
    w.key("pid").value(e.pid);
    w.key("tid").value(e.tid);
    if (e.ph == 'M') {
      w.key("args").beginObject();
      w.key("name").value(e.threadName);
      w.endObject();
      w.endObject();
      continue;
    }
    w.key("ts").value(e.tsMicros);
    if (e.ph == 'i') w.key("s").value("t");
    if (e.ph == 'C') {
      w.key("args").beginObject();
      w.key("value").value(e.counterValue);
      w.endObject();
    } else if (!e.args.empty()) {
      w.key("args").beginObject();
      for (const auto& [k, v] : e.args) w.key(k).value(v);
      w.endObject();
    }
    w.endObject();
  }
  if (dropped > 0) {
    w.beginObject();
    w.key("name").value("events_dropped");
    w.key("ph").value("i");
    w.key("s").value("g");
    w.key("ts").value(0.0);
    w.key("pid").value(1);
    w.key("tid").value(0);
    w.key("args").beginObject();
    w.key("count").value(dropped);
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.key("displayTimeUnit").value("ms");
  w.endObject();
  out << w.str() << '\n';
  out.flush();
}

bool ChromeTraceWriter::writeToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write(out);
  return static_cast<bool>(out);
}

void ChromeTraceObserver::onRunStart(const RunStartEvent& e) {
  writer_->begin("run " + std::to_string(e.runId),
                 {{"run", static_cast<double>(e.runId)},
                  {"num_mobile", static_cast<double>(e.numMobile)}});
}

void ChromeTraceObserver::onRunEnd(const RunEndEvent& e) {
  writer_->end("run " + std::to_string(e.runId));
}

void ChromeTraceObserver::onWatchdogAbort(const WatchdogAbortEvent& e) {
  writer_->instant("watchdog_abort",
                   {{"run", static_cast<double>(e.runId)},
                    {"at", static_cast<double>(e.interactions)}});
}

void ChromeTraceObserver::onCancelled(const CancelledEvent& e) {
  writer_->instant("cancelled", {{"run", static_cast<double>(e.runId)}});
}

void ChromeTraceObserver::onFaultInjected(const FaultInjectedEvent& e) {
  writer_->instant("fault_injected",
                   {{"run", static_cast<double>(e.runId)},
                    {"at", static_cast<double>(e.interactions)},
                    {"agent", static_cast<double>(e.agent)}});
}

void ChromeTraceObserver::onBatchProgress(const BatchProgressEvent& e) {
  writer_->counter("batch_completed", static_cast<double>(e.completed));
  writer_->counter("batch_lanes_live", static_cast<double>(e.lanesLive));
  writer_->counter("batch_lanes_retired", static_cast<double>(e.lanesRetired));
}

void ChromeTraceObserver::onExploreProgress(const ExploreProgressEvent& e) {
  writer_->counter("explore_nodes", static_cast<double>(e.nodes));
  writer_->counter("explore_frontier", static_cast<double>(e.frontier));
}

void ChromeTraceObserver::onPhaseStart(const ExplorePhaseStartEvent& e) {
  writer_->begin(e.phase, {{"explore", static_cast<double>(e.exploreId)}});
}

void ChromeTraceObserver::onPhaseEnd(const ExplorePhaseEndEvent& e) {
  writer_->end(e.phase);
}

void ChromeTraceObserver::onTruncated(const ExploreTruncatedEvent& e) {
  writer_->instant("explore_truncated",
                   {{"explore", static_cast<double>(e.exploreId)},
                    {"nodes", static_cast<double>(e.nodes)},
                    {"max_nodes", static_cast<double>(e.maxNodes)}});
}

void ChromeTraceObserver::onSearchProgress(const SearchProgressEvent& e) {
  writer_->counter("search_examined", static_cast<double>(e.examined));
  writer_->counter("search_solvers", static_cast<double>(e.solvers));
}

void ChromeTraceObserver::onMemorySample(const MemorySampleEvent& e) {
  writer_->counter("mem_configs", static_cast<double>(e.configsBytes));
  writer_->counter("mem_adjacency", static_cast<double>(e.adjacencyBytes));
  writer_->counter("mem_dedup", static_cast<double>(e.dedupBytes));
  writer_->counter("mem_frontier", static_cast<double>(e.frontierBytes));
  writer_->counter("mem_codec", static_cast<double>(e.codecBytes));
  writer_->counter("mem_total", static_cast<double>(e.totalBytes));
  writer_->counter("mem_spill", static_cast<double>(e.spillBytes));
}

}  // namespace ppn
