// MetricsRunObserver: the standard probe that folds every RunObserver event
// into a MetricsRegistry, so a sweep's endpoint counters (runs, converged,
// named, timed out, faults injected, silence checks) come out of the metrics
// snapshot and can be cross-checked against the batch summary structs.
//
// Registered metrics (all under the given registry):
//   counters   runs_started, runs_ended, runs_converged, runs_named,
//              runs_timed_out, runs_cancelled, silence_checks,
//              faults_injected, watchdog_aborts
//   gauges     batch_completed, batch_total, batch_degraded,
//              batch_lanes_live, batch_lanes_retired (last batch seen; the
//              lane gauges stay 0 for scalar batch drivers)
//   histograms convergence_interactions (converged runs only; decade buckets)
//
// MetricsExploreObserver is the analysis-layer twin: it folds ExploreObserver
// events into the same registry so one metrics.json covers simulation and
// exact-checking alike.
//
// Registered metrics:
//   counters   explorations (final progress events), explorations_truncated,
//              explore_phases (phase_end events), search_candidates
//              (candidates examined across all search_progress deltas)
//   gauges     explore_nodes, explore_edges, explore_dedup_hits,
//              explore_bytes_estimate (last progress event seen),
//              search_solvers, search_unknown (last search event seen),
//              mem_configs_bytes, mem_adjacency_bytes, mem_dedup_bytes,
//              mem_frontier_bytes, mem_codec_bytes, mem_total_bytes,
//              mem_high_water_bytes, mem_spill_bytes, mem_spill_runs
//              (last memory_sample seen; DESIGN 18/19)
//   histograms explore_phase_millis (decade buckets, every phase_end)
#pragma once

#include "obs/explore_observer.h"
#include "obs/metrics.h"
#include "obs/observer.h"

namespace ppn {

class MetricsRunObserver final : public RunObserver {
 public:
  /// The registry must outlive the observer.
  explicit MetricsRunObserver(MetricsRegistry& registry);

  void onRunStart(const RunStartEvent& e) override;
  void onRunEnd(const RunEndEvent& e) override;
  void onSilenceCheck(const SilenceCheckEvent& e) override;
  void onWatchdogAbort(const WatchdogAbortEvent& e) override;
  void onCancelled(const CancelledEvent& e) override;
  void onFaultInjected(const FaultInjectedEvent& e) override;
  void onBatchProgress(const BatchProgressEvent& e) override;

 private:
  MetricsRegistry* registry_;
  CounterHandle runsStarted_, runsEnded_, runsConverged_, runsNamed_,
      runsTimedOut_, runsCancelled_, silenceChecks_, faultsInjected_,
      watchdogAborts_;
  GaugeHandle batchCompleted_, batchTotal_, batchDegraded_, batchLanesLive_,
      batchLanesRetired_;
  HistogramHandle convergenceInteractions_;
};

class MetricsExploreObserver final : public ExploreObserver {
 public:
  /// The registry must outlive the observer.
  explicit MetricsExploreObserver(MetricsRegistry& registry);

  void onExploreProgress(const ExploreProgressEvent& e) override;
  void onPhaseEnd(const ExplorePhaseEndEvent& e) override;
  void onTruncated(const ExploreTruncatedEvent& e) override;
  void onSearchProgress(const SearchProgressEvent& e) override;
  void onMemorySample(const MemorySampleEvent& e) override;

 private:
  MetricsRegistry* registry_;
  CounterHandle explorations_, explorationsTruncated_, explorePhases_,
      searchCandidates_;
  GaugeHandle exploreNodes_, exploreEdges_, exploreDedupHits_,
      exploreBytesEstimate_, searchSolvers_, searchUnknown_, memConfigsBytes_,
      memAdjacencyBytes_, memDedupBytes_, memFrontierBytes_, memCodecBytes_,
      memTotalBytes_, memHighWaterBytes_, memSpillBytes_, memSpillRuns_;
  HistogramHandle explorePhaseMillis_;
  /// Last search_progress seen (searches run sequentially into one
  /// observer), so search_candidates counts each candidate once despite
  /// periodic re-reports; resets when a new searchId appears.
  std::uint64_t lastSearchId_ = 0;
  std::uint64_t lastExamined_ = 0;
};

}  // namespace ppn
