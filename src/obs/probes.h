// MetricsRunObserver: the standard probe that folds every RunObserver event
// into a MetricsRegistry, so a sweep's endpoint counters (runs, converged,
// named, timed out, faults injected, silence checks) come out of the metrics
// snapshot and can be cross-checked against the batch summary structs.
//
// Registered metrics (all under the given registry):
//   counters   runs_started, runs_ended, runs_converged, runs_named,
//              runs_timed_out, runs_cancelled, silence_checks,
//              faults_injected, watchdog_aborts
//   gauges     batch_completed, batch_total, batch_degraded (last batch seen)
//   histograms convergence_interactions (converged runs only; decade buckets)
#pragma once

#include "obs/metrics.h"
#include "obs/observer.h"

namespace ppn {

class MetricsRunObserver final : public RunObserver {
 public:
  /// The registry must outlive the observer.
  explicit MetricsRunObserver(MetricsRegistry& registry);

  void onRunStart(const RunStartEvent& e) override;
  void onRunEnd(const RunEndEvent& e) override;
  void onSilenceCheck(const SilenceCheckEvent& e) override;
  void onWatchdogAbort(const WatchdogAbortEvent& e) override;
  void onCancelled(const CancelledEvent& e) override;
  void onFaultInjected(const FaultInjectedEvent& e) override;
  void onBatchProgress(const BatchProgressEvent& e) override;

 private:
  MetricsRegistry* registry_;
  CounterHandle runsStarted_, runsEnded_, runsConverged_, runsNamed_,
      runsTimedOut_, runsCancelled_, silenceChecks_, faultsInjected_,
      watchdogAborts_;
  GaugeHandle batchCompleted_, batchTotal_, batchDegraded_;
  HistogramHandle convergenceInteractions_;
};

}  // namespace ppn
