#include "obs/resource_sampler.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ppn {

namespace {

/// Ticks-per-second and page size are process-wide constants; cache them.
std::uint64_t clockTicksPerSec() {
#if defined(_SC_CLK_TCK)
  static const long ticks = sysconf(_SC_CLK_TCK);
  return ticks > 0 ? static_cast<std::uint64_t>(ticks) : 100;
#else
  return 100;
#endif
}

std::uint64_t pageSizeBytes() {
#if defined(_SC_PAGESIZE)
  static const long page = sysconf(_SC_PAGESIZE);
  return page > 0 ? static_cast<std::uint64_t>(page) : 4096;
#else
  return 4096;
#endif
}

bool readWhole(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return !out.empty();
}

}  // namespace

std::optional<ResourceSample> sampleProcessResources(std::int64_t pid) {
  const std::string base = "/proc/" + std::to_string(pid);
  std::string stat;
  if (!readWhole(base + "/stat", stat)) return std::nullopt;

  // /proc/<pid>/stat: "pid (comm) state ppid ..." — comm may contain spaces
  // and parentheses, so fields are counted from the LAST ')'.
  const std::size_t close = stat.rfind(')');
  if (close == std::string::npos) return std::nullopt;
  std::istringstream fields(stat.substr(close + 1));
  // After ')' the next field is #3 (state); utime/stime are fields 14/15.
  std::string state;
  fields >> state;
  // A zombie is a dead shard awaiting its waitpid: its memory is already
  // reclaimed (rss reads 0), so a sample would be noise, not telemetry.
  if (state == "Z") return std::nullopt;
  std::uint64_t utimeTicks = 0, stimeTicks = 0;
  for (int field = 4; field <= 15 && fields; ++field) {
    if (field == 14) {
      fields >> utimeTicks;
    } else if (field == 15) {
      fields >> stimeTicks;
    } else {
      std::string skip;
      fields >> skip;
    }
  }
  if (!fields) return std::nullopt;

  ResourceSample sample;
  sample.pid = pid;
  const std::uint64_t ticks = clockTicksPerSec();
  sample.utimeMillis = utimeTicks * 1000 / ticks;
  sample.stimeMillis = stimeTicks * 1000 / ticks;

  std::string statm;
  if (readWhole(base + "/statm", statm)) {
    std::istringstream mem(statm);
    std::uint64_t vsizePages = 0, rssPages = 0;
    if (mem >> vsizePages >> rssPages) {
      sample.vsizeBytes = vsizePages * pageSizeBytes();
      sample.rssBytes = rssPages * pageSizeBytes();
    }
  }

  std::string io;
  if (readWhole(base + "/io", io)) {
    std::istringstream lines(io);
    std::string line;
    bool sawRead = false, sawWrite = false;
    while (std::getline(lines, line)) {
      std::istringstream kv(line);
      std::string key;
      std::uint64_t value = 0;
      if (!(kv >> key >> value)) continue;
      if (key == "read_bytes:") {
        sample.readBytes = value;
        sawRead = true;
      } else if (key == "write_bytes:") {
        sample.writeBytes = value;
        sawWrite = true;
      }
    }
    sample.ioAvailable = sawRead && sawWrite;
  }
  return sample;
}

std::vector<std::pair<std::uint32_t, ResourceSample>> ResourceSampler::sample(
    const std::vector<std::pair<std::uint32_t, std::int64_t>>& pids,
    Clock::time_point now) {
  std::vector<std::pair<std::uint32_t, ResourceSample>> out;
  if (intervalMillis_ == 0) {
    tracked_.clear();
    return out;
  }
  // Forget pids no longer offered, so a recycled pid starts from a fresh
  // baseline instead of inheriting the dead shard's CPU counters.
  for (auto it = tracked_.begin(); it != tracked_.end();) {
    const std::int64_t pid = it->first;
    const bool offered =
        std::any_of(pids.begin(), pids.end(),
                    [pid](const auto& p) { return p.second == pid; });
    it = offered ? std::next(it) : tracked_.erase(it);
  }
  for (const auto& [tag, pid] : pids) {
    const auto it = tracked_.find(pid);
    if (it != tracked_.end()) {
      const auto sinceLast = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 now - it->second.lastSampleAt)
                                 .count();
      if (sinceLast >= 0 &&
          static_cast<std::uint64_t>(sinceLast) < intervalMillis_) {
        continue;
      }
    }
    auto sampled = sampleProcessResources(pid);
    if (!sampled.has_value()) {
      tracked_.erase(pid);  // exited between the poll and the /proc read
      continue;
    }
    const std::uint64_t cpuMillis = sampled->utimeMillis + sampled->stimeMillis;
    if (it != tracked_.end()) {
      const double wallMillis =
          std::chrono::duration<double, std::milli>(now -
                                                    it->second.lastSampleAt)
              .count();
      const std::uint64_t cpuDelta =
          cpuMillis >= it->second.lastCpuMillis
              ? cpuMillis - it->second.lastCpuMillis
              : 0;
      if (wallMillis > 0.0) {
        sampled->cpuPermille = static_cast<std::uint32_t>(
            1000.0 * static_cast<double>(cpuDelta) / wallMillis + 0.5);
      }
    }
    tracked_[pid] = PidState{now, cpuMillis};
    out.emplace_back(tag, *sampled);
  }
  return out;
}

}  // namespace ppn
