// Batch progress reporter: periodically prints completed/total, runs/sec,
// degraded count and an ETA to stderr while a long sweep is running.
//
// Counts run_end events (so it works for single batches and multi-batch
// sweeps alike; batch-local completed/total from batch_progress events would
// reset between cells). `expectedRuns` = 0 means the sweep size is unknown:
// the reporter then omits the total and the ETA. Output goes to stderr and
// only when explicitly attached (benches gate it behind --progress), so
// default bench output stays byte-for-byte unchanged.
// ExploreProgressReporter is the analysis-layer twin: it prints exploration
// node counts (nodes/sec, plus percent-of-cap and ETA when the caller knows
// maxNodes) and search progress (candidates/sec + ETA) from ExploreObserver
// events, throttled the same way.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>

#include "obs/explore_observer.h"
#include "obs/observer.h"

namespace ppn {

/// Shared guarded rate/ETA math for every progress surface (ProgressReporter,
/// campaign_runner status, the campaign health report). The degenerate inputs
/// are real, not theoretical: the first sample after a resume has zero
/// elapsed time AND zero completed units, and a blacklisted-everything shard
/// has a zero rate — all of them must yield a quiet 0.0, never inf/NaN.
///
/// completed/elapsedSeconds; 0.0 when elapsedSeconds <= 0.
double safeRate(std::uint64_t completed, double elapsedSeconds);
/// remaining/rate seconds; 0.0 when rate <= 0 (unknown is rendered as "no
/// ETA", not as a division blow-up).
double safeEta(std::uint64_t remaining, double ratePerSec);

class ProgressReporter final : public RunObserver {
 public:
  explicit ProgressReporter(std::uint64_t expectedRuns = 0,
                            std::uint64_t intervalMillis = 2000,
                            std::FILE* out = nullptr);  // nullptr = stderr

  void onRunEnd(const RunEndEvent& e) override;

  /// Prints the final summary line (idempotent); also called on destruction.
  void finish();
  ~ProgressReporter() override;

  std::uint64_t completed() const;
  std::uint64_t degraded() const;

 private:
  void report(bool final);

  std::FILE* out_;
  const std::uint64_t expectedRuns_;
  const std::uint64_t intervalMillis_;
  mutable std::mutex mu_;
  std::uint64_t completed_ = 0;
  std::uint64_t degraded_ = 0;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point lastReport_;
};

class ExploreProgressReporter final : public ExploreObserver {
 public:
  /// `maxNodes` = 0 means the node cap is unknown: exploration lines then
  /// omit the percent-of-cap and ETA. Output goes to `out` (nullptr =
  /// stderr), only when explicitly attached (benches gate it behind
  /// --progress).
  explicit ExploreProgressReporter(std::uint64_t maxNodes = 0,
                                   std::uint64_t intervalMillis = 2000,
                                   std::FILE* out = nullptr);

  void onExploreProgress(const ExploreProgressEvent& e) override;
  void onTruncated(const ExploreTruncatedEvent& e) override;
  void onSearchProgress(const SearchProgressEvent& e) override;

 private:
  bool shouldReport(bool final);  // caller holds mu_

  std::FILE* out_;
  const std::uint64_t maxNodes_;
  const std::uint64_t intervalMillis_;
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point lastReport_;
  /// The exploration that last printed a periodic line. Its completion always
  /// prints (closing the story the reader was following); completions of
  /// never-shown explorations go through the normal throttle instead — a
  /// search finishes thousands of tiny explorations per second, and one
  /// stderr line each would drown the search-level progress.
  std::uint64_t visibleExplore_ = 0;
};

}  // namespace ppn
