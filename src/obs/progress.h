// Batch progress reporter: periodically prints completed/total, runs/sec,
// degraded count and an ETA to stderr while a long sweep is running.
//
// Counts run_end events (so it works for single batches and multi-batch
// sweeps alike; batch-local completed/total from batch_progress events would
// reset between cells). `expectedRuns` = 0 means the sweep size is unknown:
// the reporter then omits the total and the ETA. Output goes to stderr and
// only when explicitly attached (benches gate it behind --progress), so
// default bench output stays byte-for-byte unchanged.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>

#include "obs/observer.h"

namespace ppn {

class ProgressReporter final : public RunObserver {
 public:
  explicit ProgressReporter(std::uint64_t expectedRuns = 0,
                            std::uint64_t intervalMillis = 2000,
                            std::FILE* out = nullptr);  // nullptr = stderr

  void onRunEnd(const RunEndEvent& e) override;

  /// Prints the final summary line (idempotent); also called on destruction.
  void finish();
  ~ProgressReporter() override;

  std::uint64_t completed() const;
  std::uint64_t degraded() const;

 private:
  void report(bool final);

  std::FILE* out_;
  const std::uint64_t expectedRuns_;
  const std::uint64_t intervalMillis_;
  mutable std::mutex mu_;
  std::uint64_t completed_ = 0;
  std::uint64_t degraded_ = 0;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point lastReport_;
};

}  // namespace ppn
