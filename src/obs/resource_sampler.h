// Per-process resource telemetry for the campaign orchestrator.
//
// The orchestrator is the only process with a stable view of every shard
// worker (it forked them), so resource sampling lives HERE, not in the
// shards: a hung or wedged shard cannot report its own memory use, and the
// whole point of the telemetry is to explain exactly those shards (DESIGN.md
// decision 16). sampleProcessResources reads /proc/<pid>/{stat,statm,io} —
// RSS/vsize, utime/stime, cumulative read/write bytes — and degrades
// gracefully where /proc is absent (non-Linux) or a field is unreadable
// (/proc/<pid>/io needs the reader to own the process, which the orchestrator
// does; other readers see ioAvailable = false).
//
// ResourceSampler adds the per-pid cadence and CPU% derivation: each tracked
// pid is sampled immediately when first seen (so even a sub-interval campaign
// records a baseline for every shard) and then once per `intervalMillis`;
// cpuPermille is the utime+stime delta over the wall-clock delta between
// consecutive samples of the same pid (0 on the baseline sample, 1000 = one
// full core). State for pids that stop being offered (shard exited) is
// dropped, so a recycled OS pid never inherits a stale CPU baseline.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ppn {

/// One point-in-time resource reading of a live process.
struct ResourceSample {
  std::int64_t pid = 0;
  std::uint64_t rssBytes = 0;    ///< resident set (statm, pages * page size)
  std::uint64_t vsizeBytes = 0;  ///< virtual size (statm)
  std::uint64_t utimeMillis = 0; ///< cumulative user CPU (stat, ticks -> ms)
  std::uint64_t stimeMillis = 0; ///< cumulative system CPU
  std::uint64_t readBytes = 0;   ///< cumulative storage reads (io)
  std::uint64_t writeBytes = 0;  ///< cumulative storage writes (io)
  bool ioAvailable = false;      ///< /proc/<pid>/io was readable
  /// CPU usage since the previous sample of this pid, in permille of one
  /// core (derived by ResourceSampler; 0 when sampled standalone).
  std::uint32_t cpuPermille = 0;
};

/// Reads /proc/<pid>/{stat,statm,io}. nullopt when the process does not
/// exist, is a zombie (exited, not yet reaped — its memory is reclaimed and
/// every gauge would read 0), or /proc is unavailable (the caller treats all
/// of these as "shard already exited", never as an error).
std::optional<ResourceSample> sampleProcessResources(std::int64_t pid);

class ResourceSampler {
 public:
  using Clock = std::chrono::steady_clock;

  /// `intervalMillis` = 0 disables sampling entirely (sample() returns
  /// nothing and touches no /proc file).
  explicit ResourceSampler(std::uint64_t intervalMillis)
      : intervalMillis_(intervalMillis) {}

  std::uint64_t intervalMillis() const { return intervalMillis_; }

  /// Samples every offered (tag, pid) whose per-pid interval has elapsed
  /// (immediately for a pid never seen before). `tag` is an opaque caller
  /// label carried back with the sample (the orchestrator passes the shard
  /// index). Tracking state for pids absent from `pids` is forgotten.
  std::vector<std::pair<std::uint32_t, ResourceSample>> sample(
      const std::vector<std::pair<std::uint32_t, std::int64_t>>& pids,
      Clock::time_point now = Clock::now());

 private:
  struct PidState {
    Clock::time_point lastSampleAt{};
    std::uint64_t lastCpuMillis = 0;
  };

  const std::uint64_t intervalMillis_;
  std::unordered_map<std::int64_t, PidState> tracked_;
};

}  // namespace ppn
