#include "obs/memory.h"

#include <fstream>

#include "util/json.h"

namespace ppn {

const char* memoryComponentName(MemoryComponent c) {
  switch (c) {
    case MemoryComponent::kConfigs:
      return "configs";
    case MemoryComponent::kAdjacency:
      return "adjacency";
    case MemoryComponent::kDedup:
      return "dedup";
    case MemoryComponent::kFrontier:
      return "frontier";
    case MemoryComponent::kCodec:
      return "codec";
  }
  return "?";
}

void MemoryStatsCollector::onMemorySample(const MemorySampleEvent& e) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Row& row : rows_) {
    if (row.exploreId == e.exploreId) {
      row.last = e;
      if (e.totalBytes > row.peakTotalBytes) row.peakTotalBytes = e.totalBytes;
      return;
    }
  }
  rows_.push_back(Row{e.exploreId, e, e.totalBytes});
}

std::uint64_t MemoryStatsCollector::explorations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

std::uint64_t MemoryStatsCollector::peakTotalBytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t peak = 0;
  for (const Row& row : rows_) {
    if (row.peakTotalBytes > peak) peak = row.peakTotalBytes;
  }
  return peak;
}

std::optional<MemorySampleEvent> MemoryStatsCollector::lastSample(
    std::uint64_t exploreId) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const Row& row : rows_) {
    if (row.exploreId == exploreId) return row.last;
  }
  return std::nullopt;
}

bool MemoryStatsCollector::writeJson(const std::string& path) const {
  JsonWriter w;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    w.beginObject();
    w.key("kind").value("ppn-memory-stats");
    w.key("explorations").value(static_cast<std::uint64_t>(rows_.size()));
    std::uint64_t peak = 0;
    for (const Row& row : rows_) {
      if (row.peakTotalBytes > peak) peak = row.peakTotalBytes;
    }
    w.key("peak_total_bytes").value(peak);
    w.key("rows").beginArray();
    for (const Row& row : rows_) {
      w.beginObject();
      w.key("explore").value(row.exploreId);
      w.key("configs_bytes").value(row.last.configsBytes);
      w.key("adjacency_bytes").value(row.last.adjacencyBytes);
      w.key("dedup_bytes").value(row.last.dedupBytes);
      w.key("frontier_bytes").value(row.last.frontierBytes);
      w.key("codec_bytes").value(row.last.codecBytes);
      w.key("total_bytes").value(row.last.totalBytes);
      w.key("high_water_bytes").value(row.last.highWaterBytes);
      w.key("spill_bytes").value(row.last.spillBytes);
      w.key("spill_runs").value(row.last.spillRuns);
      w.key("peak_total_bytes").value(row.peakTotalBytes);
      w.key("done").value(row.last.done);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << w.str() << '\n';
  return static_cast<bool>(out);
}

}  // namespace ppn
