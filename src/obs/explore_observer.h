// Observability probe interface for the ANALYSIS layer (the exact-checker
// counterpart of obs/observer.h's RunObserver).
//
// An ExploreObserver receives structured events from state-space exploration
// (analysis/explore.h), the fairness checkers, sink analysis, adversary
// synthesis, and the exhaustive protocol search. Everything is opt-in and
// mirrors RunObserver's null-is-one-branch design: observers are plumbed as
// nullable pointers, every hook site is a single branch on a pointer that is
// null in the default configuration, and an unobserved exploration is
// bit-identical to pre-telemetry behavior (the observer only ever *reads*).
//
// Event identity: `exploreId` labels one exploration / one checker invocation
// / one search job. Callers that run several explorations into one observer
// (protocol_search, the Table 1 bench) assign ascending ids so events remain
// attributable after they are interleaved into one JSONL stream. Within one
// exploreId, ExploreProgressEvent node counts are monotone non-decreasing
// and phase events nest like a call stack — both properties are validated by
// tests/obs/explore_observer_test.cpp and .github/scripts/check_telemetry.py.
//
// Threading contract: the analysis layer is single-threaded today, but
// observers shared with the simulation substrate (JsonlEventSink,
// ChromeTraceObserver, MetricsExploreObserver) are thread-safe anyway, so a
// future parallel search can share one sink without a contract change.
#pragma once

#include <cstdint>
#include <vector>

namespace ppn {

/// Periodic snapshot of a breadth-first exploration, emitted every
/// kExploreProgressStride expanded nodes plus once at the end of every
/// exploration that expanded at least one node.
struct ExploreProgressEvent {
  std::uint64_t exploreId = 0;
  std::uint64_t nodes = 0;      ///< configurations interned so far
  std::uint64_t frontier = 0;   ///< nodes discovered but not yet expanded
  std::uint64_t edges = 0;      ///< edges recorded so far
  std::uint64_t dedupHits = 0;  ///< intern() calls that hit an existing node
  std::uint64_t bytesEstimate = 0;  ///< approximate graph memory footprint
  double nodesPerSec = 0.0;     ///< expansion rate since the exploration began
  double elapsedMillis = 0.0;   ///< wall time since the exploration began
  // Per-section loop timing, so a dedup-bound exploration is distinguishable
  // from an expand-bound one (the aggregate nodesPerSec hides which side
  // degraded). Wall-clock fields, measured only when an observer is
  // attached; like nodesPerSec they are exempt from bit-identity.
  double expandMillis = 0.0;  ///< successor enumeration time so far
  double dedupMillis = 0.0;   ///< intern/dedup (table + spill probe) time
  double appendMillis = 0.0;  ///< graph append (adjacency/stream) time
  double ioMillis = 0.0;      ///< spill flush + compaction time
  double expandNodesPerSec = 0.0;  ///< expanded nodes / expand seconds
  double dedupNodesPerSec = 0.0;   ///< expanded nodes / dedup seconds
  bool done = false;            ///< true on the final (completion) event
};

/// Start of a named analysis phase ("explore", "scc", "verdict",
/// "synthesize", "search", ...). Phases nest: every start is balanced by an
/// ExplorePhaseEndEvent with the same name, LIFO within an exploreId.
struct ExplorePhaseStartEvent {
  std::uint64_t exploreId = 0;
  const char* phase = "";
};

struct ExplorePhaseEndEvent {
  std::uint64_t exploreId = 0;
  const char* phase = "";
  double wallMillis = 0.0;  ///< duration of the phase
};

/// Exploration hit maxNodes (or the byte budget) before closing the
/// frontier. Carries the unexpanded frontier (node ids into the returned
/// ConfigGraph) that was previously dropped on the floor, so a consumer can
/// resume, sample, or at least report *where* the explosion happened.
struct ExploreTruncatedEvent {
  std::uint64_t exploreId = 0;
  std::uint64_t nodes = 0;     ///< nodes interned when the cap fired
  std::uint64_t maxNodes = 0;  ///< the node cap in force
  /// Unexpanded node ids, in BFS order, valid in the returned ConfigGraph.
  std::vector<std::uint32_t> frontier;
  std::uint64_t maxBytes = 0;     ///< the byte budget in force (0 = none)
  std::uint64_t bytesAtCut = 0;   ///< ledger total when the cut fired
  bool byBudget = false;          ///< true when the BYTE budget fired the cut
};

/// Periodic memory snapshot of one exploration (DESIGN decision 18): the
/// MemoryLedger's per-component bytes, high-water mark, and a best-effort
/// /proc self-sample for ledger-vs-RSS drift. Emitted at the same cadence as
/// ExploreProgressEvent (every kExploreProgressStride expansions plus the
/// final done event). All fields except rssBytes/elapsedMillis are
/// deterministic: identical at every thread and shard count.
struct MemorySampleEvent {
  std::uint64_t exploreId = 0;
  std::uint64_t configsBytes = 0;    ///< node storage (slots + mobile heap)
  std::uint64_t adjacencyBytes = 0;  ///< per-node edge allocations
  std::uint64_t dedupBytes = 0;      ///< hash table nodes + buckets + slots
  std::uint64_t frontierBytes = 0;   ///< BFS frontier entries
  std::uint64_t codecBytes = 0;      ///< packed-config heap spill
  std::uint64_t totalBytes = 0;      ///< sum of the five components
  std::uint64_t highWaterBytes = 0;  ///< peak total at any checkpoint so far
  /// Process RSS from the resource_sampler self-sample (0 if unavailable).
  /// NOT deterministic — a drift diagnostic, excluded from bit-identity.
  std::uint64_t rssBytes = 0;
  /// Dedup-spill tier (compressed storage, DESIGN decision 19): bytes
  /// currently on DISK in sorted run files and the live run count. Outside
  /// totalBytes (the ledger models RAM); deterministic like the components.
  std::uint64_t spillBytes = 0;
  std::uint64_t spillRuns = 0;
  double elapsedMillis = 0.0;  ///< wall time since the exploration began
  bool done = false;           ///< true on the final (completion) event
};

/// Periodic progress of an exhaustive protocol-space search
/// (analysis/protocol_search.h). `unknown` counts candidates whose verdict
/// came from a truncated exploration — neither solver nor non-solver.
struct SearchProgressEvent {
  std::uint64_t searchId = 0;
  std::uint64_t examined = 0;  ///< candidates fully decided so far
  std::uint64_t total = 0;     ///< size of the enumerated space
  std::uint64_t solvers = 0;
  std::uint64_t unknown = 0;
  double candidatesPerSec = 0.0;
  double elapsedMillis = 0.0;
  bool done = false;  ///< true on the final (completion) event
};

/// Base class with no-op defaults: implementations override only the hooks
/// they care about (mirrors RunObserver).
class ExploreObserver {
 public:
  virtual ~ExploreObserver() = default;

  virtual void onExploreProgress(const ExploreProgressEvent&) {}
  virtual void onPhaseStart(const ExplorePhaseStartEvent&) {}
  virtual void onPhaseEnd(const ExplorePhaseEndEvent&) {}
  virtual void onTruncated(const ExploreTruncatedEvent&) {}
  virtual void onSearchProgress(const SearchProgressEvent&) {}
  virtual void onMemorySample(const MemorySampleEvent&) {}
};

/// Fan-out to several explore observers (e.g. JSONL sink + metrics + trace).
/// Observers are not owned and must outlive the MultiExploreObserver; add()
/// must finish before the observed analysis starts.
class MultiExploreObserver final : public ExploreObserver {
 public:
  MultiExploreObserver() = default;
  void add(ExploreObserver* obs) {
    if (obs != nullptr) observers_.push_back(obs);
  }
  bool empty() const { return observers_.empty(); }

  void onExploreProgress(const ExploreProgressEvent& e) override {
    for (auto* o : observers_) o->onExploreProgress(e);
  }
  void onPhaseStart(const ExplorePhaseStartEvent& e) override {
    for (auto* o : observers_) o->onPhaseStart(e);
  }
  void onPhaseEnd(const ExplorePhaseEndEvent& e) override {
    for (auto* o : observers_) o->onPhaseEnd(e);
  }
  void onTruncated(const ExploreTruncatedEvent& e) override {
    for (auto* o : observers_) o->onTruncated(e);
  }
  void onSearchProgress(const SearchProgressEvent& e) override {
    for (auto* o : observers_) o->onSearchProgress(e);
  }
  void onMemorySample(const MemorySampleEvent& e) override {
    for (auto* o : observers_) o->onMemorySample(e);
  }

 private:
  std::vector<ExploreObserver*> observers_;
};

/// RAII helper emitting a balanced onPhaseStart/onPhaseEnd pair around a
/// scope, with the wall timing measured here so every emitter agrees on the
/// clock. Null observer = zero work beyond one branch.
class PhaseScope {
 public:
  PhaseScope(ExploreObserver* obs, std::uint64_t exploreId, const char* phase);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  ExploreObserver* obs_;
  std::uint64_t exploreId_;
  const char* phase_;
  /// steady_clock::time_point, stored as nanoseconds-since-epoch to keep
  /// <chrono> out of this widely included header.
  std::uint64_t startNanos_ = 0;
};

}  // namespace ppn
