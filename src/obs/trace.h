// Convergence flight recorder + Chrome-trace exporter.
//
// FlightRecorder is a bounded ring buffer of per-run convergence samples
// (name-occupancy histogram, distinct-name count, collision count) taken at a
// configurable interaction stride. It retains only the most recent
// `capacity` samples, so it can stay attached to long campaigns for free and
// still hold the moments that matter when a run goes wrong: the sim layer
// dumps it automatically on watchdog abort and on fault-induced divergence
// (sim/runner.h, faults/campaign.h). Samples are plain data — this layer
// never sees core types, so the Engine-sampling glue lives in sim.
//
// ChromeTraceWriter collects Chrome trace_event JSON (the format consumed by
// chrome://tracing and ui.perfetto.dev): nested B/E duration events, i
// instants and C counters on per-thread tracks, timestamped in microseconds
// since the writer was created. ChromeTraceObserver adapts RunObserver +
// ExploreObserver events onto a writer, so one --trace-out flag renders runs,
// batches, checker phases and fault injections as a zoomable timeline.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/explore_observer.h"
#include "obs/observer.h"

namespace ppn {

/// One convergence snapshot of a run, taken every `stride` interactions.
struct ConvergenceSample {
  std::uint64_t runId = 0;
  std::uint64_t interactions = 0;  ///< engine interaction count at the sample
  std::uint32_t distinctNames = 0; ///< distinct projected names held
  std::uint32_t collisions = 0;    ///< agents sharing their name with another
  /// Multiplicity of each held name, descending (the shape of the occupancy
  /// histogram matters for diagnosis, the name identities do not).
  std::vector<std::uint32_t> occupancy;
};

/// Thread-safe bounded ring buffer of ConvergenceSamples with JSONL dumping.
/// Overwrites the oldest sample when full; totalRecorded() keeps counting, so
/// consumers can tell how much history the ring dropped.
class FlightRecorder {
 public:
  /// `dumpPath` is where dump() writes when the sim layer trips an abort;
  /// empty disables automatic dumping (samples stay queryable in-process).
  explicit FlightRecorder(std::size_t capacity = 4096,
                          std::uint64_t stride = 1024,
                          std::string dumpPath = "");

  std::uint64_t stride() const { return stride_; }
  std::size_t capacity() const { return capacity_; }

  void record(ConvergenceSample sample);

  /// Samples currently retained (<= capacity).
  std::size_t size() const;
  /// Samples ever recorded (>= size(); the difference was overwritten).
  std::uint64_t totalRecorded() const;
  /// Retained samples in recording order (oldest first), wraparound resolved.
  std::vector<ConvergenceSample> samples() const;

  /// Writes a JSONL dump: one header line
  ///   {"event":"flight_recorder_dump","reason":...,"capacity":...,
  ///    "stride":...,"total_recorded":...,"retained":...}
  /// then one {"event":"convergence_sample",...} line per retained sample,
  /// oldest first.
  void dump(const std::string& reason, std::ostream& out) const;

  /// dump() to the path configured at construction. Returns false (without
  /// throwing — this runs on abort paths) when no path was configured or the
  /// file cannot be opened. Later dumps overwrite earlier ones: the most
  /// recent abort is the one being debugged.
  bool dumpToConfiguredPath(const std::string& reason) const;

 private:
  mutable std::mutex mu_;
  const std::size_t capacity_;
  const std::uint64_t stride_;
  const std::string dumpPath_;
  std::vector<ConvergenceSample> ring_;
  std::uint64_t total_ = 0;  ///< next write position = total_ % capacity_
};

/// Thread-safe collector of Chrome trace_event entries. Every emitter stamps
/// the calling thread's track (tids are dense indices in first-seen order,
/// each introduced by a thread_name metadata event) and the current time in
/// microseconds since construction. Bounded: past `maxEvents` new events are
/// dropped and counted, so a runaway campaign cannot exhaust memory.
class ChromeTraceWriter {
 public:
  using Args = std::vector<std::pair<std::string, double>>;

  explicit ChromeTraceWriter(std::size_t maxEvents = 1u << 20);

  /// Begin/end a nested duration (ph B/E) on the calling thread's track.
  void begin(const std::string& name, const Args& args = {});
  void end(const std::string& name);
  /// Thread-scoped instant event (ph i).
  void instant(const std::string& name, const Args& args = {});
  /// Counter track (ph C).
  void counter(const std::string& name, double value);
  /// Names the calling thread's track (thread_name metadata, ph M); tracks
  /// are otherwise auto-named "worker-<tid>".
  void setThreadName(const std::string& name);

  // Post-hoc assembly API (E25 campaign trace assembler): events stamped
  // with an EXPLICIT (pid, tid) track and timestamp, so recorded streams can
  // be replayed onto their original processes instead of the assembling
  // thread. The live API above always writes pid 1; assemblers use the real
  // OS pids, which Perfetto renders as separate process groups. The same
  // maxEvents bound and drop counter apply.
  void beginOn(std::uint32_t pid, std::uint32_t tid, double tsMicros,
               const std::string& name, const Args& args = {});
  void endOn(std::uint32_t pid, std::uint32_t tid, double tsMicros,
             const std::string& name);
  void instantOn(std::uint32_t pid, std::uint32_t tid, double tsMicros,
                 const std::string& name, const Args& args = {});
  void counterOn(std::uint32_t pid, std::uint32_t tid, double tsMicros,
                 const std::string& name, double value);
  /// thread_name metadata for an explicit (pid, tid) track.
  void setTrackName(std::uint32_t pid, std::uint32_t tid,
                    const std::string& name);
  /// process_name metadata for an explicit pid.
  void setProcessName(std::uint32_t pid, const std::string& name);

  std::size_t size() const;
  std::uint64_t droppedEvents() const;

  /// Renders {"traceEvents":[...],"displayTimeUnit":"ms"}. Valid JSON
  /// (loadable in chrome://tracing) regardless of event mix; a
  /// dropped-events metadata entry is appended when the cap was hit.
  void write(std::ostream& out) const;
  /// write() to a file; returns false when the file cannot be opened.
  bool writeToFile(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    char ph = 'i';
    double tsMicros = 0.0;
    std::uint32_t pid = 1;  ///< live API: 1; assembly API: caller-provided
    std::uint32_t tid = 0;
    double counterValue = 0.0;  ///< ph C only
    Args args;
    /// ph M only: the track/process label; `name` then holds the metadata
    /// kind ("thread_name" or "process_name").
    std::string threadName;
  };

  /// Caller holds mu_. Dense tid for the calling thread, registering (and
  /// queueing a thread_name metadata event) on first sight.
  std::uint32_t tidLocked();
  void push(Event e);
  double nowMicros() const;

  mutable std::mutex mu_;
  const std::size_t maxEvents_;
  const std::chrono::steady_clock::time_point start_;
  std::map<std::thread::id, std::uint32_t> tids_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

/// Adapts simulation (RunObserver) and analysis (ExploreObserver) events onto
/// a ChromeTraceWriter:
///   run_start/run_end         -> "run <id>" duration on the worker's track
///   fault_injected            -> instant
///   watchdog_abort/cancelled  -> instant
///   batch_progress            -> "batch_completed" + "batch_lanes_live" /
///                                "batch_lanes_retired" counters
///   phase_start/phase_end     -> nested duration named after the phase
///   explore_progress          -> "explore_nodes"/"explore_frontier" counters
///   explore_truncated         -> instant
///   search_progress           -> "search_examined"/"search_solvers" counters
///   memory_sample             -> per-component "mem_configs"/"mem_adjacency"
///                                /"mem_dedup"/"mem_frontier"/"mem_codec"
///                                counter tracks plus "mem_total"
/// The writer is not owned and must outlive the observer.
class ChromeTraceObserver final : public RunObserver, public ExploreObserver {
 public:
  explicit ChromeTraceObserver(ChromeTraceWriter& writer) : writer_(&writer) {}

  void onRunStart(const RunStartEvent& e) override;
  void onRunEnd(const RunEndEvent& e) override;
  void onWatchdogAbort(const WatchdogAbortEvent& e) override;
  void onCancelled(const CancelledEvent& e) override;
  void onFaultInjected(const FaultInjectedEvent& e) override;
  void onBatchProgress(const BatchProgressEvent& e) override;

  void onExploreProgress(const ExploreProgressEvent& e) override;
  void onPhaseStart(const ExplorePhaseStartEvent& e) override;
  void onPhaseEnd(const ExplorePhaseEndEvent& e) override;
  void onTruncated(const ExploreTruncatedEvent& e) override;
  void onSearchProgress(const SearchProgressEvent& e) override;
  void onMemorySample(const MemorySampleEvent& e) override;

 private:
  ChromeTraceWriter* writer_;
};

}  // namespace ppn
