// Thread-safe fan-in for ExploreObservers shared by parallel analyses.
//
// The parallel protocol search (analysis/protocol_search.h, threads > 1) runs
// one checker per worker, all forwarding into a single user-supplied
// observer. Sinks designed for the simulation substrate (JsonlEventSink,
// ChromeTraceObserver) are internally locked, but the ExploreObserver
// contract itself never promised thread-safety, and some implementations
// keep cross-event state (MetricsExploreObserver's search-delta tracking,
// ad-hoc test collectors). SerializedExploreObserver restores the
// single-threaded contract by serializing every hook behind one mutex: the
// inner observer sees a linearized event stream exactly as if the analyses
// had run sequentially interleaved.
#pragma once

#include <mutex>

#include "obs/explore_observer.h"

namespace ppn {

/// Mutex fan-in adapter. The inner observer is borrowed and must outlive
/// this object; it must not be fed from elsewhere concurrently.
class SerializedExploreObserver final : public ExploreObserver {
 public:
  explicit SerializedExploreObserver(ExploreObserver* inner) : inner_(inner) {}

  void onExploreProgress(const ExploreProgressEvent& e) override {
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->onExploreProgress(e);
  }
  void onPhaseStart(const ExplorePhaseStartEvent& e) override {
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->onPhaseStart(e);
  }
  void onPhaseEnd(const ExplorePhaseEndEvent& e) override {
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->onPhaseEnd(e);
  }
  void onTruncated(const ExploreTruncatedEvent& e) override {
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->onTruncated(e);
  }
  void onSearchProgress(const SearchProgressEvent& e) override {
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->onSearchProgress(e);
  }
  void onMemorySample(const MemorySampleEvent& e) override {
    const std::lock_guard<std::mutex> lock(mu_);
    inner_->onMemorySample(e);
  }

 private:
  ExploreObserver* inner_;
  std::mutex mu_;
};

}  // namespace ppn
