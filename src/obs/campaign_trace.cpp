#include "obs/campaign_trace.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "obs/events.h"
#include "util/json.h"

namespace ppn {

namespace {

/// Shard-stream lanes: tid 0 carries counters and unattributed instants,
/// runs are lane-allocated from tid 1, explore phases get their own track
/// well clear of any plausible lane count (shard thread pools are small).
constexpr std::uint32_t kPhaseTid = 50;
/// Shard streams with no orchestrator stream to supply the real OS pid get a
/// synthetic, collision-free process id.
constexpr std::int64_t kSyntheticPidBase = 1'000'000;

double numField(const JsonValue& doc, const char* key, double fallback = 0.0) {
  const JsonValue* v = doc.find(key);
  return v != nullptr && v->isNumber() ? v->asDouble() : fallback;
}

std::string strField(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  return v != nullptr && v->isString() ? v->asString() : std::string();
}

struct ParsedLine {
  std::string event;
  double tsMillis = 0.0;
  JsonValue doc;
};

/// Parses one stream, dropping (and counting) lines that are not events.
std::vector<ParsedLine> parseStream(const std::string& path,
                                    std::uint64_t& skipped) {
  std::vector<ParsedLine> out;
  for (const std::string& line : readJsonlTolerant(path).lines) {
    auto value = jsonParse(line);
    if (!value.has_value() || !value->isObject()) {
      ++skipped;
      continue;
    }
    const JsonValue* event = value->find("event");
    const JsonValue* ts = value->find("elapsed_ms");
    if (event == nullptr || !event->isString() || ts == nullptr ||
        !ts->isNumber()) {
      ++skipped;
      continue;
    }
    ParsedLine parsed;
    parsed.event = event->asString();
    parsed.tsMillis = ts->asDouble();
    parsed.doc = std::move(*value);
    out.push_back(std::move(parsed));
  }
  return out;
}

/// Orchestrator-side view of one shard while replaying the stream.
struct OrchShardState {
  bool trackNamed = false;
  bool runOpen = false;
  std::optional<std::uint64_t> openUnit;
  std::string openUnitName;
  std::int64_t lastPid = -1;
  double lastSpawnMillis = 0.0;
  bool spawnSeen = false;
};

}  // namespace

CampaignTraceInputs discoverCampaignTraceInputs(const std::string& outDir) {
  CampaignTraceInputs inputs;
  const std::string finalStream = outDir + "/events.jsonl";
  if (std::filesystem::exists(finalStream)) {
    inputs.orchestratorEvents = finalStream;
  } else if (std::filesystem::exists(finalStream + ".tmp")) {
    inputs.orchestratorEvents = finalStream + ".tmp";
    inputs.orchestratorLive = true;
  }
  const std::string shardDir = outDir + "/shards";
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(shardDir, ec)) {
    const std::string name = entry.path().filename().string();
    // shards/shard_<digits>.events.jsonl
    const std::string prefix = "shard_";
    const std::string suffix = ".events.jsonl";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    CampaignTraceInputs::ShardStream stream;
    stream.shard = static_cast<std::uint32_t>(std::stoul(digits));
    stream.path = entry.path().string();
    inputs.shardStreams.push_back(std::move(stream));
  }
  std::sort(inputs.shardStreams.begin(), inputs.shardStreams.end(),
            [](const auto& a, const auto& b) { return a.shard < b.shard; });
  return inputs;
}

CampaignTraceStats assembleCampaignTrace(const CampaignTraceInputs& inputs,
                                         ChromeTraceWriter& writer) {
  CampaignTraceStats stats;
  std::map<std::uint32_t, OrchShardState> shards;
  std::set<std::int64_t> namedPids;
  bool campaignOpen = false;
  double lastOrchMillis = 0.0;

  const auto namePid = [&](std::int64_t pid, std::uint32_t shard) {
    if (pid <= 0 || !namedPids.insert(pid).second) return;
    writer.setProcessName(static_cast<std::uint32_t>(pid),
                          "shard " + std::to_string(shard) + " worker");
  };

  if (!inputs.orchestratorEvents.empty()) {
    writer.setProcessName(0, "orchestrator");
    writer.setTrackName(0, 0, "campaign");
    for (const ParsedLine& line :
         parseStream(inputs.orchestratorEvents, stats.skippedLines)) {
      ++stats.orchestratorLines;
      const double ts = line.tsMillis * 1000.0;
      lastOrchMillis = std::max(lastOrchMillis, line.tsMillis);
      const auto shardOf = [&]() -> OrchShardState& {
        const auto index =
            static_cast<std::uint32_t>(numField(line.doc, "shard"));
        OrchShardState& s = shards[index];
        if (!s.trackNamed) {
          s.trackNamed = true;
          writer.setTrackName(0, index + 1, "shard " + std::to_string(index));
        }
        return s;
      };
      const auto shardTid = [&]() {
        return static_cast<std::uint32_t>(numField(line.doc, "shard")) + 1;
      };

      if (line.event == "campaign_start") {
        writer.beginOn(0, 0, ts, "campaign",
                       {{"units", numField(line.doc, "units")},
                        {"shards", numField(line.doc, "shards")},
                        {"workers", numField(line.doc, "workers")}});
        campaignOpen = true;
        ++stats.slices;
      } else if (line.event == "campaign_end") {
        if (campaignOpen) {
          writer.endOn(0, 0, ts, "campaign");
          campaignOpen = false;
        }
      } else if (line.event == "shard_spawn") {
        OrchShardState& s = shardOf();
        if (s.runOpen) {  // exit line lost: keep the track balanced anyway
          writer.endOn(0, shardTid(), ts, "shard-run");
          ++stats.forcedCloses;
        }
        s.runOpen = true;
        s.spawnSeen = true;
        s.lastPid = static_cast<std::int64_t>(numField(line.doc, "pid"));
        s.lastSpawnMillis = line.tsMillis;
        namePid(s.lastPid,
                static_cast<std::uint32_t>(numField(line.doc, "shard")));
        writer.beginOn(0, shardTid(), ts, "shard-run",
                       {{"pid", numField(line.doc, "pid")},
                        {"spawn", numField(line.doc, "spawn")}});
        ++stats.slices;
      } else if (line.event == "shard_exit") {
        OrchShardState& s = shardOf();
        if (s.openUnit.has_value()) {
          writer.endOn(0, shardTid(), ts, s.openUnitName);
          s.openUnit.reset();
          ++stats.forcedCloses;
        }
        if (s.runOpen) {
          writer.endOn(0, shardTid(), ts, "shard-run");
          s.runOpen = false;
        }
        if (numField(line.doc, "signal") != 0.0) {
          writer.instantOn(0, shardTid(), ts, "shard_killed",
                           {{"signal", numField(line.doc, "signal")}});
          ++stats.instants;
        }
      } else if (line.event == "unit_start") {
        OrchShardState& s = shardOf();
        if (s.openUnit.has_value()) {  // retry boundary: close the old attempt
          writer.endOn(0, shardTid(), ts, s.openUnitName);
          ++stats.forcedCloses;
        }
        s.openUnit = static_cast<std::uint64_t>(numField(line.doc, "unit"));
        s.openUnitName = "unit " + std::to_string(*s.openUnit);
        writer.beginOn(0, shardTid(), ts, s.openUnitName,
                       {{"attempt", numField(line.doc, "attempt")}});
        ++stats.slices;
      } else if (line.event == "unit_end") {
        OrchShardState& s = shardOf();
        const auto unit =
            static_cast<std::uint64_t>(numField(line.doc, "unit"));
        if (s.openUnit == unit) {
          writer.endOn(0, shardTid(), ts, s.openUnitName);
          s.openUnit.reset();
        } else {
          // Completed between two orchestrator polls: no observed start, so
          // the slice is zero-width — present, searchable, honest.
          const std::string name = "unit " + std::to_string(unit);
          writer.beginOn(0, shardTid(), ts, name,
                         {{"attempt", numField(line.doc, "attempt")}});
          writer.endOn(0, shardTid(), ts, name);
          ++stats.slices;
        }
      } else if (line.event == "unit_retry") {
        const bool stalled = strField(line.doc, "reason") == "stalled";
        writer.instantOn(0, shardTid(), ts,
                         stalled ? "shard_stalled" : "unit_retry",
                         {{"unit", numField(line.doc, "unit")},
                          {"attempt", numField(line.doc, "attempt")},
                          {"backoff_ms", numField(line.doc, "backoff_ms")}});
        (void)shardOf();
        ++stats.instants;
      } else if (line.event == "unit_failed") {
        writer.instantOn(0, shardTid(), ts, "unit_failed",
                         {{"unit", numField(line.doc, "unit")},
                          {"attempts", numField(line.doc, "attempts")}});
        (void)shardOf();
        ++stats.instants;
      } else if (line.event == "resource_sample") {
        const auto pid = static_cast<std::int64_t>(numField(line.doc, "pid"));
        if (pid > 0) {
          namePid(pid, static_cast<std::uint32_t>(numField(line.doc, "shard")));
          const auto upid = static_cast<std::uint32_t>(pid);
          writer.counterOn(upid, 0, ts, "rss_bytes",
                           numField(line.doc, "rss_bytes"));
          writer.counterOn(upid, 0, ts, "cpu_permille",
                           numField(line.doc, "cpu_permille"));
          stats.counters += 2;
        }
      } else {
        ++stats.skippedLines;
      }
    }
    // An interrupted/crashed campaign leaves slices open; close them at the
    // stream's final timestamp so every B still has its E.
    const double endTs = lastOrchMillis * 1000.0;
    for (auto& [index, s] : shards) {
      if (s.openUnit.has_value()) {
        writer.endOn(0, index + 1, endTs, s.openUnitName);
        s.openUnit.reset();
        ++stats.forcedCloses;
      }
      if (s.runOpen) {
        writer.endOn(0, index + 1, endTs, "shard-run");
        s.runOpen = false;
        ++stats.forcedCloses;
      }
    }
    if (campaignOpen) {
      writer.endOn(0, 0, endTs, "campaign");
      ++stats.forcedCloses;
    }
  }

  for (const CampaignTraceInputs::ShardStream& stream : inputs.shardStreams) {
    const auto it = shards.find(stream.shard);
    const bool haveSpawn = it != shards.end() && it->second.spawnSeen;
    // Shard clocks start at shard spawn; re-base onto the campaign timeline.
    // A respawn truncates the stream, so the LAST spawn is the right base.
    const double baseMillis = haveSpawn ? it->second.lastSpawnMillis : 0.0;
    const std::int64_t pid = haveSpawn && it->second.lastPid > 0
                                 ? it->second.lastPid
                                 : kSyntheticPidBase + stream.shard;
    namePid(pid, stream.shard);
    const auto upid = static_cast<std::uint32_t>(pid);
    writer.setTrackName(upid, 0, "shard-main");

    std::map<std::uint64_t, std::pair<std::uint32_t, std::string>> openRuns;
    std::set<std::uint32_t> freeLanes;
    std::uint32_t nextLane = 1;
    std::set<std::uint32_t> namedLanes;
    std::vector<std::string> phaseStack;
    bool phaseTrackNamed = false;
    double lastMillis = baseMillis;

    const auto allocLane = [&]() {
      std::uint32_t lane;
      if (!freeLanes.empty()) {
        lane = *freeLanes.begin();
        freeLanes.erase(freeLanes.begin());
      } else {
        lane = nextLane++;
      }
      if (namedLanes.insert(lane).second) {
        writer.setTrackName(upid, lane, "runs-" + std::to_string(lane));
      }
      return lane;
    };
    const auto laneOfRun = [&](double run) -> std::uint32_t {
      const auto found = openRuns.find(static_cast<std::uint64_t>(run));
      return found != openRuns.end() ? found->second.first : 0;
    };

    for (const ParsedLine& line :
         parseStream(stream.path, stats.skippedLines)) {
      ++stats.shardLines;
      const double millis = baseMillis + line.tsMillis;
      lastMillis = std::max(lastMillis, millis);
      const double ts = millis * 1000.0;

      if (line.event == "run_start") {
        const auto run = static_cast<std::uint64_t>(numField(line.doc, "run"));
        const std::uint32_t lane = allocLane();
        const std::string name = "run " + std::to_string(run);
        writer.beginOn(upid, lane, ts, name,
                       {{"agents", numField(line.doc, "num_participants")}});
        openRuns[run] = {lane, name};
        ++stats.slices;
      } else if (line.event == "run_end") {
        const auto run = static_cast<std::uint64_t>(numField(line.doc, "run"));
        const auto found = openRuns.find(run);
        if (found != openRuns.end()) {
          writer.endOn(upid, found->second.first, ts, found->second.second);
          freeLanes.insert(found->second.first);
          openRuns.erase(found);
        } else {  // start predates the (truncated) stream: zero-width slice
          const std::uint32_t lane = allocLane();
          const std::string name = "run " + std::to_string(run);
          writer.beginOn(upid, lane, ts, name);
          writer.endOn(upid, lane, ts, name);
          freeLanes.insert(lane);
          ++stats.slices;
        }
      } else if (line.event == "fault_injected") {
        writer.instantOn(upid, laneOfRun(numField(line.doc, "run")), ts,
                         "fault_injected",
                         {{"run", numField(line.doc, "run")},
                          {"at", numField(line.doc, "at")},
                          {"agent", numField(line.doc, "agent")}});
        ++stats.instants;
      } else if (line.event == "watchdog_abort" || line.event == "cancelled") {
        writer.instantOn(upid, laneOfRun(numField(line.doc, "run")), ts,
                         line.event, {{"run", numField(line.doc, "run")}});
        ++stats.instants;
      } else if (line.event == "batch_progress") {
        writer.counterOn(upid, 0, ts, "batch_completed",
                         numField(line.doc, "completed"));
        ++stats.counters;
      } else if (line.event == "explore_progress") {
        writer.counterOn(upid, 0, ts, "explore_nodes",
                         numField(line.doc, "nodes"));
        writer.counterOn(upid, 0, ts, "explore_frontier",
                         numField(line.doc, "frontier"));
        stats.counters += 2;
      } else if (line.event == "phase_start") {
        if (!phaseTrackNamed) {
          phaseTrackNamed = true;
          writer.setTrackName(upid, kPhaseTid, "explore-phases");
        }
        const std::string phase = strField(line.doc, "phase");
        writer.beginOn(upid, kPhaseTid, ts, phase,
                       {{"explore", numField(line.doc, "explore")}});
        phaseStack.push_back(phase);
        ++stats.slices;
      } else if (line.event == "phase_end") {
        // Only a matching top-of-stack end closes a slice; an orphan end
        // (start predates the truncated stream) is dropped rather than
        // corrupting the nesting.
        if (!phaseStack.empty() &&
            phaseStack.back() == strField(line.doc, "phase")) {
          writer.endOn(upid, kPhaseTid, ts, phaseStack.back());
          phaseStack.pop_back();
        }
      } else if (line.event == "explore_truncated") {
        writer.instantOn(upid, kPhaseTid, ts, "explore_truncated",
                         {{"nodes", numField(line.doc, "nodes")},
                          {"max_nodes", numField(line.doc, "max_nodes")}});
        ++stats.instants;
      } else if (line.event == "search_progress") {
        writer.counterOn(upid, 0, ts, "search_examined",
                         numField(line.doc, "examined"));
        writer.counterOn(upid, 0, ts, "search_solvers",
                         numField(line.doc, "solvers"));
        stats.counters += 2;
      } else {
        ++stats.skippedLines;
      }
    }

    const double endTs = lastMillis * 1000.0;
    for (const auto& [run, laneName] : openRuns) {
      writer.endOn(upid, laneName.first, endTs, laneName.second);
      ++stats.forcedCloses;
    }
    for (auto rit = phaseStack.rbegin(); rit != phaseStack.rend(); ++rit) {
      writer.endOn(upid, kPhaseTid, endTs, *rit);
      ++stats.forcedCloses;
    }
  }

  // Every pid that got a process_name track: spawn pids (a killed spawn's
  // pid included — its shard-run slice is in the trace), resource-sample
  // pids, and the synthetic pids of orphan shard streams. Already sorted.
  stats.shardPids.assign(namedPids.begin(), namedPids.end());
  return stats;
}

}  // namespace ppn
