#include "obs/progress.h"

namespace ppn {

double safeRate(std::uint64_t completed, double elapsedSeconds) {
  if (elapsedSeconds <= 0.0) return 0.0;
  return static_cast<double>(completed) / elapsedSeconds;
}

double safeEta(std::uint64_t remaining, double ratePerSec) {
  if (ratePerSec <= 0.0) return 0.0;
  return static_cast<double>(remaining) / ratePerSec;
}

ProgressReporter::ProgressReporter(std::uint64_t expectedRuns,
                                   std::uint64_t intervalMillis, std::FILE* out)
    : out_(out != nullptr ? out : stderr),
      expectedRuns_(expectedRuns),
      intervalMillis_(intervalMillis),
      start_(std::chrono::steady_clock::now()),
      lastReport_(start_) {}

ProgressReporter::~ProgressReporter() { finish(); }

std::uint64_t ProgressReporter::completed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::uint64_t ProgressReporter::degraded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

void ProgressReporter::onRunEnd(const RunEndEvent& e) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  if (e.timedOut) ++degraded_;
  const auto now = std::chrono::steady_clock::now();
  const auto sinceLast =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - lastReport_)
          .count();
  if (sinceLast >= 0 &&
      static_cast<std::uint64_t>(sinceLast) >= intervalMillis_) {
    lastReport_ = now;
    report(false);
  }
}

void ProgressReporter::finish() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  if (completed_ > 0) report(true);
}

// Caller holds mu_.
void ProgressReporter::report(bool final) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = safeRate(completed_, elapsed);
  if (expectedRuns_ > 0) {
    const std::uint64_t left =
        expectedRuns_ > completed_ ? expectedRuns_ - completed_ : 0;
    const double eta = safeEta(left, rate);
    std::fprintf(out_,
                 "[ppn progress] %llu/%llu runs (%.1f%%) | %.1f runs/s | "
                 "degraded %llu | eta %.0fs%s\n",
                 static_cast<unsigned long long>(completed_),
                 static_cast<unsigned long long>(expectedRuns_),
                 100.0 * static_cast<double>(completed_) /
                     static_cast<double>(expectedRuns_),
                 rate, static_cast<unsigned long long>(degraded_), eta,
                 final ? " | done" : "");
  } else {
    std::fprintf(out_,
                 "[ppn progress] %llu runs | %.1f runs/s | degraded %llu%s\n",
                 static_cast<unsigned long long>(completed_), rate,
                 static_cast<unsigned long long>(degraded_),
                 final ? " | done" : "");
  }
  std::fflush(out_);
}

ExploreProgressReporter::ExploreProgressReporter(std::uint64_t maxNodes,
                                                 std::uint64_t intervalMillis,
                                                 std::FILE* out)
    : out_(out != nullptr ? out : stderr),
      maxNodes_(maxNodes),
      intervalMillis_(intervalMillis),
      lastReport_(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(intervalMillis)) {}

// Caller holds mu_. Final events always print; periodic ones are throttled.
bool ExploreProgressReporter::shouldReport(bool final) {
  const auto now = std::chrono::steady_clock::now();
  if (!final) {
    const auto sinceLast =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - lastReport_)
            .count();
    if (sinceLast < 0 ||
        static_cast<std::uint64_t>(sinceLast) < intervalMillis_) {
      return false;
    }
  }
  lastReport_ = now;
  return true;
}

void ExploreProgressReporter::onExploreProgress(const ExploreProgressEvent& e) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (e.done) {
    const bool wasVisible = e.exploreId == visibleExplore_;
    if (wasVisible) {
      visibleExplore_ = 0;
    } else if (!shouldReport(false)) {
      return;
    }
  } else {
    if (!shouldReport(false)) return;
    visibleExplore_ = e.exploreId;
  }
  if (maxNodes_ > 0) {
    const std::uint64_t left = maxNodes_ > e.nodes ? maxNodes_ - e.nodes : 0;
    const double eta = e.nodesPerSec > 0.0
                           ? static_cast<double>(left) / e.nodesPerSec
                           : 0.0;
    std::fprintf(out_,
                 "[ppn explore %llu] %llu/%llu nodes (%.1f%% of cap) | "
                 "%.0f nodes/s | frontier %llu | eta %.0fs%s\n",
                 static_cast<unsigned long long>(e.exploreId),
                 static_cast<unsigned long long>(e.nodes),
                 static_cast<unsigned long long>(maxNodes_),
                 100.0 * static_cast<double>(e.nodes) /
                     static_cast<double>(maxNodes_),
                 e.nodesPerSec, static_cast<unsigned long long>(e.frontier),
                 eta, e.done ? " | done" : "");
  } else {
    std::fprintf(out_,
                 "[ppn explore %llu] %llu nodes | %.0f nodes/s | "
                 "frontier %llu%s\n",
                 static_cast<unsigned long long>(e.exploreId),
                 static_cast<unsigned long long>(e.nodes), e.nodesPerSec,
                 static_cast<unsigned long long>(e.frontier),
                 e.done ? " | done" : "");
  }
  std::fflush(out_);
}

void ExploreProgressReporter::onTruncated(const ExploreTruncatedEvent& e) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out_,
               "[ppn explore %llu] TRUNCATED at %llu nodes (cap %llu), "
               "%llu frontier configurations unexpanded\n",
               static_cast<unsigned long long>(e.exploreId),
               static_cast<unsigned long long>(e.nodes),
               static_cast<unsigned long long>(e.maxNodes),
               static_cast<unsigned long long>(e.frontier.size()));
  std::fflush(out_);
}

void ExploreProgressReporter::onSearchProgress(const SearchProgressEvent& e) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!shouldReport(e.done)) return;
  const std::uint64_t left = e.total > e.examined ? e.total - e.examined : 0;
  const double eta = e.candidatesPerSec > 0.0
                         ? static_cast<double>(left) / e.candidatesPerSec
                         : 0.0;
  std::fprintf(out_,
               "[ppn search %llu] %llu/%llu candidates (%.1f%%) | "
               "%.0f cand/s | solvers %llu | unknown %llu | eta %.0fs%s\n",
               static_cast<unsigned long long>(e.searchId),
               static_cast<unsigned long long>(e.examined),
               static_cast<unsigned long long>(e.total),
               e.total > 0 ? 100.0 * static_cast<double>(e.examined) /
                                 static_cast<double>(e.total)
                           : 0.0,
               e.candidatesPerSec,
               static_cast<unsigned long long>(e.solvers),
               static_cast<unsigned long long>(e.unknown), eta,
               e.done ? " | done" : "");
  std::fflush(out_);
}

}  // namespace ppn
