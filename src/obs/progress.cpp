#include "obs/progress.h"

namespace ppn {

ProgressReporter::ProgressReporter(std::uint64_t expectedRuns,
                                   std::uint64_t intervalMillis, std::FILE* out)
    : out_(out != nullptr ? out : stderr),
      expectedRuns_(expectedRuns),
      intervalMillis_(intervalMillis),
      start_(std::chrono::steady_clock::now()),
      lastReport_(start_) {}

ProgressReporter::~ProgressReporter() { finish(); }

std::uint64_t ProgressReporter::completed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::uint64_t ProgressReporter::degraded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

void ProgressReporter::onRunEnd(const RunEndEvent& e) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  if (e.timedOut) ++degraded_;
  const auto now = std::chrono::steady_clock::now();
  const auto sinceLast =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - lastReport_)
          .count();
  if (sinceLast >= 0 &&
      static_cast<std::uint64_t>(sinceLast) >= intervalMillis_) {
    lastReport_ = now;
    report(false);
  }
}

void ProgressReporter::finish() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  if (completed_ > 0) report(true);
}

// Caller holds mu_.
void ProgressReporter::report(bool final) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate =
      elapsed > 0.0 ? static_cast<double>(completed_) / elapsed : 0.0;
  if (expectedRuns_ > 0) {
    const std::uint64_t left =
        expectedRuns_ > completed_ ? expectedRuns_ - completed_ : 0;
    const double eta = rate > 0.0 ? static_cast<double>(left) / rate : 0.0;
    std::fprintf(out_,
                 "[ppn progress] %llu/%llu runs (%.1f%%) | %.1f runs/s | "
                 "degraded %llu | eta %.0fs%s\n",
                 static_cast<unsigned long long>(completed_),
                 static_cast<unsigned long long>(expectedRuns_),
                 100.0 * static_cast<double>(completed_) /
                     static_cast<double>(expectedRuns_),
                 rate, static_cast<unsigned long long>(degraded_), eta,
                 final ? " | done" : "");
  } else {
    std::fprintf(out_,
                 "[ppn progress] %llu runs | %.1f runs/s | degraded %llu%s\n",
                 static_cast<unsigned long long>(completed_), rate,
                 static_cast<unsigned long long>(degraded_),
                 final ? " | done" : "");
  }
  std::fflush(out_);
}

}  // namespace ppn
