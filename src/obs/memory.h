// Memory accounting for the exploration stack (DESIGN decision 18).
//
// A MemoryLedger holds per-component byte counters for one exploration:
// configuration storage, adjacency (edge) storage, the dedup hash table, the
// BFS frontier, and packed-codec heap spill. Values are *modeled* bytes — a
// deterministic, content-derived malloc-chunk model (paddedAllocBytes) — not
// allocator introspection. That is deliberate: the ledger is what the byte
// budget (`ExploreOptions::maxBytes`) truncates on, so its value at every
// serial pop must be replayable by the parallel engine's level cut without
// asking the allocator anything. The model tracks glibc closely enough that
// the E27 report pins ledger-total-vs-RSS drift within 15% on a fresh heap.
//
// Threading contract: a ledger is mutated from one thread at a time. The
// parallel exploration engine gives each dedup shard its own ledger (workers
// record insertions contention-free) and folds them into the tracker's
// ledger on the merge thread in fixed shard order — the totals are identical
// to serial because every per-entry cost is a content-derived constant.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/explore_observer.h"

namespace ppn {

/// The attributed components of an exploration's footprint.
enum class MemoryComponent : std::uint32_t {
  kConfigs = 0,    ///< Configuration/adjacency slot arrays + per-node mobile heap
  kAdjacency = 1,  ///< per-node edge allocations
  kDedup = 2,      ///< hash-table nodes, bucket array, id slots
  kFrontier = 3,   ///< BFS frontier entries
  kCodec = 4,      ///< packed-config heap spill beyond the inline buffer
};

inline constexpr std::size_t kMemoryComponentCount = 5;

/// "configs" | "adjacency" | "dedup" | "frontier" | "codec".
const char* memoryComponentName(MemoryComponent c);

/// Models one malloc chunk for a heap request of `bytes`: 8 bytes of header
/// rounded up to 16-byte alignment, 32-byte minimum chunk, and 0 for an
/// empty request (no allocation at all). Matches glibc malloc on LP64.
constexpr std::uint64_t paddedAllocBytes(std::uint64_t bytes) {
  if (bytes == 0) return 0;
  const std::uint64_t chunk = (bytes + 8 + 15) / 16 * 16;
  return chunk < 32 ? 32 : chunk;
}

/// Smallest power of two >= k (k >= 1): the capacity a geometric push_back
/// vector or a ~doubling hash-bucket array has reached after k insertions.
constexpr std::uint64_t grownCapacity(std::uint64_t k) {
  std::uint64_t cap = 1;
  while (cap < k) cap <<= 1;
  return cap;
}

/// Per-component byte counters with high-water marks. All updates are plain
/// (non-atomic) arithmetic — cheap enough for per-expansion hot-path use.
class MemoryLedger {
 public:
  void add(MemoryComponent c, std::uint64_t bytes) {
    bytes_[index(c)] += bytes;
  }
  void sub(MemoryComponent c, std::uint64_t bytes) {
    bytes_[index(c)] -= bytes;
  }
  void set(MemoryComponent c, std::uint64_t bytes) {
    bytes_[index(c)] = bytes;
  }
  std::uint64_t component(MemoryComponent c) const {
    return bytes_[index(c)];
  }
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : bytes_) sum += b;
    return sum;
  }

  /// Folds the current values into the high-water marks. Called at the
  /// deterministic checkpoints (serial: before every pop; parallel: the
  /// replayed per-pop walk), so high-water marks are engine-invariant.
  void checkpoint() {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kMemoryComponentCount; ++i) {
      sum += bytes_[i];
      if (bytes_[i] > highWater_[i]) highWater_[i] = bytes_[i];
    }
    if (sum > totalHighWater_) totalHighWater_ = sum;
  }
  /// High-water folds for totals computed by the parallel engine's per-pop
  /// replay (which simulates serial state without mutating the ledger).
  void noteTotalHighWater(std::uint64_t t) {
    if (t > totalHighWater_) totalHighWater_ = t;
  }
  void noteComponentHighWater(MemoryComponent c, std::uint64_t v) {
    if (v > highWater_[index(c)]) highWater_[index(c)] = v;
  }

  std::uint64_t highWater() const { return totalHighWater_; }
  std::uint64_t componentHighWater(MemoryComponent c) const {
    return highWater_[index(c)];
  }

  /// Component-wise sum of another ledger's current values (per-shard fold;
  /// high-water marks are the merging tracker's business, not the shards').
  void merge(const MemoryLedger& other) {
    for (std::size_t i = 0; i < kMemoryComponentCount; ++i) {
      bytes_[i] += other.bytes_[i];
    }
  }

 private:
  static constexpr std::size_t index(MemoryComponent c) {
    return static_cast<std::size_t>(c);
  }
  std::array<std::uint64_t, kMemoryComponentCount> bytes_{};
  std::array<std::uint64_t, kMemoryComponentCount> highWater_{};
  std::uint64_t totalHighWater_ = 0;
};

/// ExploreObserver that retains the last and peak memory_sample per
/// exploration id — the backing for the bench binaries' --memory-stats-out
/// flag. Thread-safe (samples may arrive from concurrent explorations).
class MemoryStatsCollector final : public ExploreObserver {
 public:
  void onMemorySample(const MemorySampleEvent& e) override;

  /// {"kind":"ppn-memory-stats", per-exploration last/peak rows, and the
  /// process-wide peak}. Returns false when the file cannot be written.
  bool writeJson(const std::string& path) const;

  std::uint64_t explorations() const;
  std::uint64_t peakTotalBytes() const;

  /// The most recent sample recorded for `exploreId` (once the exploration
  /// finished: the done=true totals). nullopt for an unknown id.
  std::optional<MemorySampleEvent> lastSample(std::uint64_t exploreId) const;

 private:
  struct Row {
    std::uint64_t exploreId = 0;
    MemorySampleEvent last;
    std::uint64_t peakTotalBytes = 0;
  };
  mutable std::mutex mu_;
  std::vector<Row> rows_;  // insertion order; linear scan (few explorations)
};

}  // namespace ppn
