// Observability probe interface (the telemetry layer's contract).
//
// A RunObserver receives structured events from the simulation substrate:
// the runner (run start/end, silence checks, watchdog fires, cancellations,
// batch progress) and the engine (fault injections via corruptMobile /
// corruptLeader, which is the single choke point every fault regime goes
// through). Everything is opt-in: observers are plumbed as nullable pointers
// and every hook site is a single branch, so an unobserved run pays nothing
// but that branch — the engine's hot step() path carries no hook at all.
//
// Threading contract: batch drivers invoke observer hooks concurrently from
// worker threads. Every RunObserver implementation shipped here
// (JsonlEventSink, ProgressReporter, MetricsRunObserver, MultiObserver) is
// thread-safe; custom observers must be too when used with threads > 1.
//
// Event identity: `runId` is assigned by the batch driver (batch index plus
// the spec's runIdBase). Sweeps that chain several batches (certifyRecovery,
// convergence_sweep) advance the base between batches so ids stay unique
// across the whole sweep and run_start/run_end events pair up one-to-one.
#pragma once

#include <cstdint>
#include <vector>

namespace ppn {

struct RunStartEvent {
  std::uint64_t runId = 0;
  std::uint32_t numMobile = 0;
  std::uint32_t numParticipants = 0;
};

struct RunEndEvent {
  std::uint64_t runId = 0;
  bool silent = false;     ///< reached a terminal configuration
  bool named = false;      ///< silent with distinct valid names
  bool timedOut = false;   ///< aborted by the wall-clock watchdog
  bool cancelled = false;  ///< aborted via the batch CancelToken
  std::uint64_t convergenceInteractions = 0;
  std::uint64_t totalInteractions = 0;
  double wallMillis = 0.0;  ///< wall-clock duration of the run (observer view)
};

struct SilenceCheckEvent {
  std::uint64_t runId = 0;
  std::uint64_t interactions = 0;  ///< engine interaction count at the poll
  bool silent = false;
};

struct WatchdogAbortEvent {
  std::uint64_t runId = 0;
  std::uint64_t interactions = 0;
  std::uint64_t budgetMillis = 0;  ///< the RunLimits.maxWallMillis that fired
};

struct CancelledEvent {
  std::uint64_t runId = 0;
  std::uint64_t interactions = 0;
};

enum class FaultTarget { kMobile, kLeader };

struct FaultInjectedEvent {
  std::uint64_t runId = 0;
  std::uint64_t interactions = 0;  ///< interaction index of the injection
  FaultTarget target = FaultTarget::kMobile;
  std::uint32_t agent = 0;  ///< victim agent id (0 for leader faults)
};

struct BatchProgressEvent {
  std::uint32_t completed = 0;  ///< runs finished so far in this batch
  std::uint32_t total = 0;      ///< runs the batch will execute
  std::uint32_t degraded = 0;   ///< completed runs aborted by the watchdog
  /// SoA batch-engine lane telemetry (sim/batch_engine.h): lanes still
  /// resident in the wide kernel vs. runs retired by reaching silence.
  /// Scalar batch drivers leave both 0.
  std::uint32_t lanesLive = 0;
  std::uint32_t lanesRetired = 0;
};

/// Base class with no-op defaults: implementations override only the hooks
/// they care about. All hooks may be called concurrently (see header note).
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  virtual void onRunStart(const RunStartEvent&) {}
  virtual void onRunEnd(const RunEndEvent&) {}
  virtual void onSilenceCheck(const SilenceCheckEvent&) {}
  virtual void onWatchdogAbort(const WatchdogAbortEvent&) {}
  virtual void onCancelled(const CancelledEvent&) {}
  virtual void onFaultInjected(const FaultInjectedEvent&) {}
  virtual void onBatchProgress(const BatchProgressEvent&) {}
};

/// Fan-out to several observers (e.g. JSONL sink + metrics + progress).
/// Observers are not owned and must outlive the MultiObserver; add() is not
/// thread-safe and must finish before the batch starts.
class MultiObserver final : public RunObserver {
 public:
  MultiObserver() = default;
  void add(RunObserver* obs) {
    if (obs != nullptr) observers_.push_back(obs);
  }
  bool empty() const { return observers_.empty(); }

  void onRunStart(const RunStartEvent& e) override {
    for (auto* o : observers_) o->onRunStart(e);
  }
  void onRunEnd(const RunEndEvent& e) override {
    for (auto* o : observers_) o->onRunEnd(e);
  }
  void onSilenceCheck(const SilenceCheckEvent& e) override {
    for (auto* o : observers_) o->onSilenceCheck(e);
  }
  void onWatchdogAbort(const WatchdogAbortEvent& e) override {
    for (auto* o : observers_) o->onWatchdogAbort(e);
  }
  void onCancelled(const CancelledEvent& e) override {
    for (auto* o : observers_) o->onCancelled(e);
  }
  void onFaultInjected(const FaultInjectedEvent& e) override {
    for (auto* o : observers_) o->onFaultInjected(e);
  }
  void onBatchProgress(const BatchProgressEvent& e) override {
    for (auto* o : observers_) o->onBatchProgress(e);
  }

 private:
  std::vector<RunObserver*> observers_;
};

}  // namespace ppn
