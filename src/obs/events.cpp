#include "obs/events.h"

#include <stdexcept>

#include "util/json.h"

namespace ppn {

namespace {

const char* faultTargetName(FaultTarget t) {
  return t == FaultTarget::kMobile ? "mobile" : "leader";
}

}  // namespace

JsonlEventSink::JsonlEventSink(const std::string& path,
                               std::uint64_t progressIntervalMillis)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      out_(owned_.get()),
      start_(std::chrono::steady_clock::now()),
      progressIntervalMillis_(progressIntervalMillis) {
  if (!*owned_) {
    throw std::runtime_error("JsonlEventSink: cannot open '" + path +
                             "' for writing");
  }
}

JsonlEventSink::JsonlEventSink(std::ostream& out,
                               std::uint64_t progressIntervalMillis)
    : out_(&out),
      start_(std::chrono::steady_clock::now()),
      progressIntervalMillis_(progressIntervalMillis) {}

JsonlEventSink::~JsonlEventSink() { flush(); }

std::uint64_t JsonlEventSink::elapsedMillis() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void JsonlEventSink::writeLine(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  *out_ << line << '\n';
}

void JsonlEventSink::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  out_->flush();
}

void JsonlEventSink::onRunStart(const RunStartEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("run_start");
  w.key("run").value(e.runId);
  w.key("num_mobile").value(e.numMobile);
  w.key("num_participants").value(e.numParticipants);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onRunEnd(const RunEndEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("run_end");
  w.key("run").value(e.runId);
  w.key("silent").value(e.silent);
  w.key("named").value(e.named);
  w.key("timed_out").value(e.timedOut);
  w.key("cancelled").value(e.cancelled);
  w.key("convergence_interactions").value(e.convergenceInteractions);
  w.key("total_interactions").value(e.totalInteractions);
  w.key("wall_millis").value(e.wallMillis);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onWatchdogAbort(const WatchdogAbortEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("watchdog_abort");
  w.key("run").value(e.runId);
  w.key("at").value(e.interactions);
  w.key("budget_millis").value(e.budgetMillis);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onCancelled(const CancelledEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("cancelled");
  w.key("run").value(e.runId);
  w.key("at").value(e.interactions);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onFaultInjected(const FaultInjectedEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("fault_injected");
  w.key("run").value(e.runId);
  w.key("at").value(e.interactions);
  w.key("target").value(faultTargetName(e.target));
  w.key("agent").value(e.agent);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onExploreProgress(const ExploreProgressEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("explore_progress");
  w.key("explore").value(e.exploreId);
  w.key("nodes").value(e.nodes);
  w.key("frontier").value(e.frontier);
  w.key("edges").value(e.edges);
  w.key("dedup_hits").value(e.dedupHits);
  w.key("bytes_estimate").value(e.bytesEstimate);
  w.key("nodes_per_sec").value(e.nodesPerSec);
  w.key("done").value(e.done);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onPhaseStart(const ExplorePhaseStartEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("phase_start");
  w.key("explore").value(e.exploreId);
  w.key("phase").value(e.phase);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onPhaseEnd(const ExplorePhaseEndEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("phase_end");
  w.key("explore").value(e.exploreId);
  w.key("phase").value(e.phase);
  w.key("wall_millis").value(e.wallMillis);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onTruncated(const ExploreTruncatedEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("explore_truncated");
  w.key("explore").value(e.exploreId);
  w.key("nodes").value(e.nodes);
  w.key("max_nodes").value(e.maxNodes);
  w.key("frontier_size").value(static_cast<std::uint64_t>(e.frontier.size()));
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onSearchProgress(const SearchProgressEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("search_progress");
  w.key("search").value(e.searchId);
  w.key("examined").value(e.examined);
  w.key("total").value(e.total);
  w.key("solvers").value(e.solvers);
  w.key("unknown").value(e.unknown);
  w.key("candidates_per_sec").value(e.candidatesPerSec);
  w.key("done").value(e.done);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onBatchProgress(const BatchProgressEvent& e) {
  const std::uint64_t now = elapsedMillis();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const bool final = e.completed == e.total;
    if (!final && anyProgressWritten_ &&
        now - lastProgressMillis_ < progressIntervalMillis_) {
      return;
    }
    lastProgressMillis_ = now;
    anyProgressWritten_ = true;
  }
  JsonWriter w;
  w.beginObject();
  w.key("event").value("batch_progress");
  w.key("completed").value(e.completed);
  w.key("total").value(e.total);
  w.key("degraded").value(e.degraded);
  w.key("elapsed_ms").value(now);
  w.endObject();
  writeLine(w.str());
}

}  // namespace ppn
