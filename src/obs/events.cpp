#include "obs/events.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace ppn {

namespace {

const char* faultTargetName(FaultTarget t) {
  return t == FaultTarget::kMobile ? "mobile" : "leader";
}

}  // namespace

JsonlEventSink::JsonlEventSink(const std::string& path,
                               std::uint64_t progressIntervalMillis,
                               bool atomicRename)
    : owned_(std::make_unique<std::ofstream>(
          atomicRename ? path + ".tmp" : path, std::ios::trunc)),
      out_(owned_.get()),
      start_(std::chrono::steady_clock::now()),
      progressIntervalMillis_(progressIntervalMillis),
      finalPath_(atomicRename ? path : std::string()),
      tmpPath_(atomicRename ? path + ".tmp" : std::string()) {
  if (!*owned_) {
    throw std::runtime_error("JsonlEventSink: cannot open '" + path +
                             "' for writing");
  }
}

JsonlEventSink::JsonlEventSink(std::ostream& out,
                               std::uint64_t progressIntervalMillis)
    : out_(&out),
      start_(std::chrono::steady_clock::now()),
      progressIntervalMillis_(progressIntervalMillis) {}

JsonlEventSink::~JsonlEventSink() { close(); }

bool JsonlEventSink::close() {
  flush();
  if (owned_) owned_->close();
  if (finalPath_.empty()) return true;
  // The rename publishes the complete file in one step; until it happens a
  // reader either sees the previous artifact or nothing — never a torn one.
  const bool ok = std::rename(tmpPath_.c_str(), finalPath_.c_str()) == 0;
  if (!ok) {
    std::fprintf(stderr,
                 "JsonlEventSink: cannot rename '%s' onto '%s'; events remain "
                 "at the .tmp path\n",
                 tmpPath_.c_str(), finalPath_.c_str());
  }
  finalPath_.clear();
  tmpPath_.clear();
  return ok;
}

std::uint64_t JsonlEventSink::elapsedMillis() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void JsonlEventSink::writeLine(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  *out_ << line << '\n';
  if (flushEveryLine_) out_->flush();
}

void JsonlEventSink::setFlushEveryLine(bool flushEveryLine) {
  const std::lock_guard<std::mutex> lock(mu_);
  flushEveryLine_ = flushEveryLine;
}

void JsonlEventSink::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  out_->flush();
}

void JsonlEventSink::onRunStart(const RunStartEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("run_start");
  w.key("run").value(e.runId);
  w.key("num_mobile").value(e.numMobile);
  w.key("num_participants").value(e.numParticipants);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onRunEnd(const RunEndEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("run_end");
  w.key("run").value(e.runId);
  w.key("silent").value(e.silent);
  w.key("named").value(e.named);
  w.key("timed_out").value(e.timedOut);
  w.key("cancelled").value(e.cancelled);
  w.key("convergence_interactions").value(e.convergenceInteractions);
  w.key("total_interactions").value(e.totalInteractions);
  w.key("wall_millis").value(e.wallMillis);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onWatchdogAbort(const WatchdogAbortEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("watchdog_abort");
  w.key("run").value(e.runId);
  w.key("at").value(e.interactions);
  w.key("budget_millis").value(e.budgetMillis);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onCancelled(const CancelledEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("cancelled");
  w.key("run").value(e.runId);
  w.key("at").value(e.interactions);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onFaultInjected(const FaultInjectedEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("fault_injected");
  w.key("run").value(e.runId);
  w.key("at").value(e.interactions);
  w.key("target").value(faultTargetName(e.target));
  w.key("agent").value(e.agent);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onExploreProgress(const ExploreProgressEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("explore_progress");
  w.key("explore").value(e.exploreId);
  w.key("nodes").value(e.nodes);
  w.key("frontier").value(e.frontier);
  w.key("edges").value(e.edges);
  w.key("dedup_hits").value(e.dedupHits);
  w.key("bytes_estimate").value(e.bytesEstimate);
  w.key("nodes_per_sec").value(e.nodesPerSec);
  w.key("expand_ms").value(e.expandMillis);
  w.key("dedup_ms").value(e.dedupMillis);
  w.key("append_ms").value(e.appendMillis);
  w.key("io_ms").value(e.ioMillis);
  w.key("expand_nodes_per_sec").value(e.expandNodesPerSec);
  w.key("dedup_nodes_per_sec").value(e.dedupNodesPerSec);
  w.key("done").value(e.done);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onPhaseStart(const ExplorePhaseStartEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("phase_start");
  w.key("explore").value(e.exploreId);
  w.key("phase").value(e.phase);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onPhaseEnd(const ExplorePhaseEndEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("phase_end");
  w.key("explore").value(e.exploreId);
  w.key("phase").value(e.phase);
  w.key("wall_millis").value(e.wallMillis);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onTruncated(const ExploreTruncatedEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("explore_truncated");
  w.key("explore").value(e.exploreId);
  w.key("nodes").value(e.nodes);
  w.key("max_nodes").value(e.maxNodes);
  w.key("frontier_size").value(static_cast<std::uint64_t>(e.frontier.size()));
  w.key("max_bytes").value(e.maxBytes);
  w.key("bytes_at_cut").value(e.bytesAtCut);
  w.key("by_budget").value(e.byBudget);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onSearchProgress(const SearchProgressEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("search_progress");
  w.key("search").value(e.searchId);
  w.key("examined").value(e.examined);
  w.key("total").value(e.total);
  w.key("solvers").value(e.solvers);
  w.key("unknown").value(e.unknown);
  w.key("candidates_per_sec").value(e.candidatesPerSec);
  w.key("done").value(e.done);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onMemorySample(const MemorySampleEvent& e) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("memory_sample");
  w.key("explore").value(e.exploreId);
  w.key("configs_bytes").value(e.configsBytes);
  w.key("adjacency_bytes").value(e.adjacencyBytes);
  w.key("dedup_bytes").value(e.dedupBytes);
  w.key("frontier_bytes").value(e.frontierBytes);
  w.key("codec_bytes").value(e.codecBytes);
  w.key("total_bytes").value(e.totalBytes);
  w.key("high_water_bytes").value(e.highWaterBytes);
  w.key("spill_bytes").value(e.spillBytes);
  w.key("spill_runs").value(e.spillRuns);
  w.key("rss_bytes").value(e.rssBytes);
  w.key("done").value(e.done);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onBatchProgress(const BatchProgressEvent& e) {
  const std::uint64_t now = elapsedMillis();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const bool final = e.completed == e.total;
    if (!final && anyProgressWritten_ &&
        now - lastProgressMillis_ < progressIntervalMillis_) {
      return;
    }
    lastProgressMillis_ = now;
    anyProgressWritten_ = true;
  }
  JsonWriter w;
  w.beginObject();
  w.key("event").value("batch_progress");
  w.key("completed").value(e.completed);
  w.key("total").value(e.total);
  w.key("degraded").value(e.degraded);
  w.key("lanes_live").value(e.lanesLive);
  w.key("lanes_retired").value(e.lanesRetired);
  w.key("elapsed_ms").value(now);
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onCampaignStart(std::uint64_t units, std::uint32_t shards,
                                     std::uint32_t workers, bool resumed) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("campaign_start");
  w.key("units").value(units);
  w.key("shards").value(shards);
  w.key("workers").value(workers);
  w.key("resumed").value(resumed);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onShardSpawn(std::uint32_t shard, std::int64_t pid,
                                  std::uint64_t spawn) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("shard_spawn");
  w.key("shard").value(shard);
  w.key("pid").value(pid);
  w.key("spawn").value(spawn);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onShardExit(std::uint32_t shard, std::int64_t pid,
                                 int code, int signal) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("shard_exit");
  w.key("shard").value(shard);
  w.key("pid").value(pid);
  w.key("code").value(code);
  w.key("signal").value(signal);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onUnitStart(std::uint64_t unit, std::uint32_t shard,
                                 std::uint32_t attempt) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("unit_start");
  w.key("unit").value(unit);
  w.key("shard").value(shard);
  w.key("attempt").value(attempt);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onUnitEnd(std::uint64_t unit, std::uint32_t shard,
                               std::uint32_t attempt,
                               const std::string& status) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("unit_end");
  w.key("unit").value(unit);
  w.key("shard").value(shard);
  w.key("attempt").value(attempt);
  w.key("status").value(status);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onUnitRetry(std::uint64_t unit, std::uint32_t shard,
                                 std::uint32_t attempt,
                                 std::uint64_t backoffMillis,
                                 const std::string& reason) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("unit_retry");
  w.key("unit").value(unit);
  w.key("shard").value(shard);
  w.key("attempt").value(attempt);
  w.key("backoff_ms").value(backoffMillis);
  w.key("reason").value(reason);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onUnitFailed(std::uint64_t unit, std::uint32_t shard,
                                  std::uint32_t attempts,
                                  const std::string& reason) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("unit_failed");
  w.key("unit").value(unit);
  w.key("shard").value(shard);
  w.key("attempts").value(attempts);
  w.key("reason").value(reason);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onResourceSample(std::uint32_t shard,
                                      const ResourceSample& sample) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("resource_sample");
  w.key("shard").value(shard);
  w.key("pid").value(sample.pid);
  w.key("rss_bytes").value(sample.rssBytes);
  w.key("vsize_bytes").value(sample.vsizeBytes);
  w.key("utime_ms").value(sample.utimeMillis);
  w.key("stime_ms").value(sample.stimeMillis);
  w.key("cpu_permille").value(sample.cpuPermille);
  w.key("read_bytes").value(sample.readBytes);
  w.key("write_bytes").value(sample.writeBytes);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

void JsonlEventSink::onCampaignEnd(std::uint64_t completed,
                                   std::uint64_t failed, std::uint64_t total,
                                   bool interrupted) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("campaign_end");
  w.key("completed").value(completed);
  w.key("failed").value(failed);
  w.key("total").value(total);
  w.key("interrupted").value(interrupted);
  w.key("elapsed_ms").value(elapsedMillis());
  w.endObject();
  writeLine(w.str());
}

JsonlReadResult readJsonlTolerant(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("readJsonlTolerant: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  JsonlReadResult out;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      // No terminating newline: the write was cut mid-line. Drop it.
      out.torn = true;
      break;
    }
    std::string line = content.substr(pos, nl - pos);
    // CRLF tolerance: strip the '\r' so the stored line and its validation
    // are byte-identical to the LF version of the same stream.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = nl + 1;
    const bool last = pos >= content.size();
    if (line.empty() || !jsonIsValid(line)) {
      if (last) {
        // A final line that made it to its newline but not to valid JSON:
        // the crash landed inside a buffered flush. Tolerated, like the
        // missing-newline case.
        out.torn = true;
        break;
      }
      throw std::runtime_error(
          "readJsonlTolerant: '" + path + "' line " +
          std::to_string(out.lines.size() + 1) +
          (line.empty() ? " is blank" : " is not valid JSON") +
          " — interior corruption, not a torn tail");
    }
    out.lines.push_back(std::move(line));
  }
  return out;
}

}  // namespace ppn
