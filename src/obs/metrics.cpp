#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/json.h"

namespace ppn {

namespace {

std::uint64_t nextRegistryId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// Single-writer slot array: only the owning thread writes (and grows) it;
// snapshot() reads it under `mu`. Growth copies into a fresh array under the
// lock, so a concurrent snapshot never sees a moving buffer; the owner's
// unlocked increments are safe because only the owner ever swaps the buffer.
struct MetricsRegistry::Shard {
  std::mutex mu;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  std::size_t size = 0;

  void ensure(std::size_t need) {
    if (need <= size) return;
    const std::size_t newSize = std::max(need, size * 2 + 16);
    auto grown = std::make_unique<std::atomic<std::uint64_t>[]>(newSize);
    for (std::size_t i = 0; i < newSize; ++i) {
      grown[i].store(i < size ? slots[i].load(std::memory_order_relaxed) : 0,
                     std::memory_order_relaxed);
    }
    const std::lock_guard<std::mutex> lock(mu);
    slots = std::move(grown);
    size = newSize;
  }
};

MetricsRegistry::MetricsRegistry() : id_(nextRegistryId()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::localShard() {
  // Cache keyed by process-unique registry id: entries for dead registries
  // are never matched again (ids are not reused), so stale pointers are inert.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [id, shard] : cache) {
    if (id == id_) return *shard;
  }
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shard->ensure(nextSlot_);
    shards_.push_back(std::move(owned));
  }
  cache.emplace_back(id_, shard);
  return *shard;
}

CounterHandle MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const CounterMeta& m : counters_) {
    if (m.name == name) return CounterHandle{m.slot};
  }
  const std::uint32_t slot = nextSlot_++;
  counters_.push_back(CounterMeta{name, slot});
  return CounterHandle{slot};
}

GaugeHandle MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const GaugeMeta& m : gauges_) {
    if (m.name == name) return GaugeHandle{m.cell.get()};
  }
  gauges_.push_back(
      GaugeMeta{name, std::make_unique<std::atomic<std::int64_t>>(0)});
  return GaugeHandle{gauges_.back().cell.get()};
}

HistogramHandle MetricsRegistry::histogram(const std::string& name,
                                           std::vector<double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) {
      throw std::logic_error("histogram '" + name +
                             "': bounds must be strictly ascending");
    }
  }
  const std::lock_guard<std::mutex> lock(mu_);
  for (const HistogramMeta& m : histograms_) {
    if (m.name == name) {
      if (m.bounds != bounds) {
        throw std::logic_error("histogram '" + name +
                               "' re-registered with different bounds");
      }
      return HistogramHandle{m.slot,
                             static_cast<std::uint32_t>(m.bounds.size() + 1),
                             m.bounds.data()};
    }
  }
  const std::uint32_t slot = nextSlot_;
  const auto buckets = static_cast<std::uint32_t>(bounds.size() + 1);
  nextSlot_ += buckets + 2;  // buckets, count, sum bits
  histograms_.push_back(HistogramMeta{name, std::move(bounds), slot});
  // The bounds buffer is heap-owned by the meta and never mutated, so the
  // handle's borrowed pointer stays valid even when histograms_ reallocates.
  return HistogramHandle{slot, buckets, histograms_.back().bounds.data()};
}

void MetricsRegistry::add(CounterHandle h, std::uint64_t delta) {
  Shard& shard = localShard();
  shard.ensure(h.slot + 1);
  shard.slots[h.slot].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::observe(HistogramHandle h, double value) {
  Shard& shard = localShard();
  const std::size_t countSlot = h.slot + h.buckets;
  const std::size_t sumSlot = countSlot + 1;
  shard.ensure(sumSlot + 1);

  std::uint32_t bucket = h.buckets - 1;  // overflow by default
  for (std::uint32_t i = 0; i + 1 < h.buckets; ++i) {
    if (value <= h.bounds[i]) {
      bucket = i;
      break;
    }
  }

  shard.slots[h.slot + bucket].fetch_add(1, std::memory_order_relaxed);
  shard.slots[countSlot].fetch_add(1, std::memory_order_relaxed);
  // Single-writer read-modify-write: only this thread touches this shard.
  const double sum =
      std::bit_cast<double>(shard.slots[sumSlot].load(std::memory_order_relaxed));
  shard.slots[sumSlot].store(std::bit_cast<std::uint64_t>(sum + value),
                             std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);

  // Merge every shard's slot array into one flat view.
  std::vector<std::uint64_t> merged(nextSlot_, 0);
  std::vector<double> mergedSums(nextSlot_, 0.0);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shardLock(shard->mu);
    const std::size_t n = std::min<std::size_t>(shard->size, nextSlot_);
    for (std::size_t i = 0; i < n; ++i) {
      merged[i] += shard->slots[i].load(std::memory_order_relaxed);
      mergedSums[i] +=
          std::bit_cast<double>(shard->slots[i].load(std::memory_order_relaxed));
    }
  }

  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const CounterMeta& m : counters_) {
    snap.counters.push_back(MetricsSnapshot::Counter{m.name, merged[m.slot]});
  }
  snap.gauges.reserve(gauges_.size());
  for (const GaugeMeta& m : gauges_) {
    snap.gauges.push_back(MetricsSnapshot::Gauge{
        m.name, m.cell->load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(histograms_.size());
  for (const HistogramMeta& m : histograms_) {
    MetricsSnapshot::Histogram h;
    h.name = m.name;
    h.bounds = m.bounds;
    const std::size_t buckets = m.bounds.size() + 1;
    h.counts.reserve(buckets);
    for (std::size_t b = 0; b < buckets; ++b) h.counts.push_back(merged[m.slot + b]);
    h.count = merged[m.slot + buckets];
    h.sum = mergedSums[m.slot + buckets + 1];
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

const std::uint64_t* MetricsSnapshot::counterValue(std::string_view name) const {
  for (const Counter& c : counters) {
    if (c.name == name) return &c.value;
  }
  return nullptr;
}

const std::int64_t* MetricsSnapshot::gaugeValue(std::string_view name) const {
  for (const Gauge& g : gauges) {
    if (g.name == name) return &g.value;
  }
  return nullptr;
}

const MetricsSnapshot::Histogram* MetricsSnapshot::histogramNamed(
    std::string_view name) const {
  for (const Histogram& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::toJson() const {
  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-metrics");
  w.key("counters").beginObject();
  for (const Counter& c : counters) w.key(c.name).value(c.value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const Gauge& g : gauges) w.key(g.name).value(g.value);
  w.endObject();
  w.key("histograms").beginObject();
  for (const Histogram& h : histograms) {
    w.key(h.name).beginObject();
    w.key("bounds").beginArray();
    for (const double b : h.bounds) w.value(b);
    w.endArray();
    w.key("counts").beginArray();
    for (const std::uint64_t c : h.counts) w.value(c);
    w.endArray();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("mean").value(h.mean());
    w.endObject();
  }
  w.endObject();
  w.endObject();
  return w.str();
}

}  // namespace ppn
