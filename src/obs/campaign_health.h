// E25: campaign health report — per-shard throughput, straggler detection,
// retry/stall summaries, and peak-RSS attribution, computed purely from the
// orchestrator's event stream.
//
// Determinism contract: the report is a pure function of the stream's BYTES
// (every rate and latency derives from the events' own elapsed_ms stamps,
// never from a live clock, and doubles are rendered fixed-point), so
// recomputing it over the same artifact directory reproduces it
// byte-for-byte — which is what lets the merge pass publish it as a
// checksummed artifact and lets CI diff it.
//
// Straggler rule: a unit's latency is first unit_start -> terminal unit_end
// (units that complete between two orchestrator polls have no observed start
// and contribute throughput but not latency). A shard is a straggler when
// its mean unit latency exceeds stragglerFactor x the campaign-wide median
// unit latency plus stragglerSlackMillis — the slack keeps an all-sub-
// millisecond campaign (median ~0) from flagging noise, while a genuinely
// wedged unit (stall-killed, retried, finally blacklisted) exceeds any sane
// median by seconds. Resumes truncate the stream, so the report always
// describes the LAST orchestrator session.
//
// Like campaign_trace.h this lives in obs, below src/campaign/ in the
// dependency order: it reads the stream the orchestrator wrote and knows
// nothing about manifests. Callers that know the campaign directory use
// discoverCampaignTraceInputs (campaign_trace.h) to find the stream, .tmp
// fallback included.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppn {

struct CampaignHealthOptions {
  /// Straggler threshold: mean shard latency > factor * median + slack.
  double stragglerFactor = 2.0;
  double stragglerSlackMillis = 250.0;
  /// A shard with at least this many retries is flagged retry_storm.
  std::uint64_t retryStormThreshold = 3;
};

struct ShardHealth {
  std::uint32_t shard = 0;
  std::uint64_t spawns = 0;
  std::uint64_t unitsCompleted = 0;  ///< terminal unit_end, status != failed
  std::uint64_t unitsFailed = 0;     ///< terminal unit_end, status == failed
  std::uint64_t retries = 0;         ///< unit_retry events
  std::uint64_t stalls = 0;          ///< unit_retry with reason "stalled"
  std::uint64_t kills = 0;           ///< shard_exit with a nonzero signal
  /// first shard_spawn -> last shard_exit (or stream end while running).
  double activeMillis = 0.0;
  double unitsPerSec = 0.0;  ///< safeRate(completed+failed, active seconds)
  /// Units with an observed unit_start; mean latency over exactly those.
  std::uint64_t latencySamples = 0;
  double meanUnitLatencyMillis = 0.0;
  double peakRssBytes = 0.0;       ///< max resource_sample rss_bytes (0: none)
  double peakCpuPermille = 0.0;
  bool straggler = false;
  bool retryStorm = false;
};

struct CampaignHealth {
  bool campaignSeen = false;  ///< campaign_start was in the stream
  bool finished = false;      ///< campaign_end was in the stream
  bool interrupted = false;
  std::uint64_t totalUnits = 0;   ///< from campaign_start
  std::uint64_t unitsCompleted = 0;
  std::uint64_t unitsFailed = 0;
  std::uint64_t retries = 0;
  std::uint64_t stalls = 0;
  std::uint64_t kills = 0;
  double elapsedMillis = 0.0;  ///< last event timestamp in the stream
  double unitsPerSec = 0.0;
  double medianUnitLatencyMillis = 0.0;
  /// Shard holding the campaign's peak RSS sample (-1 when no samples).
  std::int32_t peakRssShard = -1;
  double peakRssBytes = 0.0;
  std::vector<ShardHealth> shards;       ///< ascending shard index
  std::vector<std::uint32_t> stragglers; ///< ascending shard index
};

/// Computes the report from raw orchestrator event lines (as returned by
/// readJsonlTolerant on the stream file). Unknown/foreign lines are ignored.
CampaignHealth computeCampaignHealth(const std::vector<std::string>& lines,
                                     const CampaignHealthOptions& options = {});

/// Reads the campaign's orchestrator stream (events.jsonl, falling back to
/// the in-flight .tmp) and computes the report. Throws std::runtime_error
/// when the directory holds no stream at all or the stream is corrupt
/// beyond a torn tail.
CampaignHealth loadCampaignHealth(const std::string& outDir,
                                  const CampaignHealthOptions& options = {});

/// Renders the report as one deterministic compact JSON document
/// (kind "ppn-campaign-health"; fixed-point doubles, 3 decimals).
std::string campaignHealthJson(const CampaignHealth& health);

}  // namespace ppn
