#include "obs/campaign_health.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/campaign_trace.h"
#include "obs/events.h"
#include "obs/progress.h"
#include "util/json.h"

namespace ppn {

namespace {

double numField(const JsonValue& doc, const char* key, double fallback = 0.0) {
  const JsonValue* v = doc.find(key);
  return v != nullptr && v->isNumber() ? v->asDouble() : fallback;
}

std::string strField(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  return v != nullptr && v->isString() ? v->asString() : std::string();
}

struct ShardAccumulator {
  ShardHealth health;
  std::vector<double> latencies;
  double firstSpawnMillis = 0.0;
  double lastExitMillis = 0.0;
  bool spawnSeen = false;
  bool exitSeen = false;
  bool running = false;
};

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return (values[mid - 1] + values[mid]) / 2.0;
}

}  // namespace

CampaignHealth computeCampaignHealth(const std::vector<std::string>& lines,
                                     const CampaignHealthOptions& options) {
  CampaignHealth health;
  std::map<std::uint32_t, ShardAccumulator> shards;
  /// unit id -> elapsed_ms of its FIRST unit_start (later attempts keep the
  /// original start: the user experiences the whole retry saga as latency).
  std::map<std::uint64_t, double> unitStarts;
  std::vector<double> allLatencies;

  const auto shardOf = [&shards](const JsonValue& doc) -> ShardAccumulator& {
    const auto index = static_cast<std::uint32_t>(numField(doc, "shard"));
    ShardAccumulator& acc = shards[index];
    acc.health.shard = index;
    return acc;
  };

  for (const std::string& line : lines) {
    const auto value = jsonParse(line);
    if (!value.has_value() || !value->isObject()) continue;
    const JsonValue* event = value->find("event");
    const JsonValue* ts = value->find("elapsed_ms");
    if (event == nullptr || !event->isString() || ts == nullptr ||
        !ts->isNumber()) {
      continue;
    }
    const std::string& kind = event->asString();
    const double millis = ts->asDouble();
    health.elapsedMillis = std::max(health.elapsedMillis, millis);

    if (kind == "campaign_start") {
      health.campaignSeen = true;
      health.totalUnits = static_cast<std::uint64_t>(numField(*value, "units"));
    } else if (kind == "campaign_end") {
      health.finished = true;
      const JsonValue* interrupted = value->find("interrupted");
      health.interrupted =
          interrupted != nullptr && interrupted->isBool() &&
          interrupted->asBool();
    } else if (kind == "shard_spawn") {
      ShardAccumulator& acc = shardOf(*value);
      ++acc.health.spawns;
      if (!acc.spawnSeen) {
        acc.spawnSeen = true;
        acc.firstSpawnMillis = millis;
      }
      acc.running = true;
    } else if (kind == "shard_exit") {
      ShardAccumulator& acc = shardOf(*value);
      acc.exitSeen = true;
      acc.lastExitMillis = millis;
      acc.running = false;
      if (numField(*value, "signal") != 0.0) ++acc.health.kills;
    } else if (kind == "unit_start") {
      ShardAccumulator& acc = shardOf(*value);
      (void)acc;
      const auto unit = static_cast<std::uint64_t>(numField(*value, "unit"));
      unitStarts.emplace(unit, millis);  // keep the FIRST attempt's start
    } else if (kind == "unit_end") {
      ShardAccumulator& acc = shardOf(*value);
      if (strField(*value, "status") == "failed") {
        ++acc.health.unitsFailed;
      } else {
        ++acc.health.unitsCompleted;
      }
      const auto unit = static_cast<std::uint64_t>(numField(*value, "unit"));
      if (const auto found = unitStarts.find(unit);
          found != unitStarts.end()) {
        const double latency = millis - found->second;
        if (latency >= 0.0) {
          acc.latencies.push_back(latency);
          allLatencies.push_back(latency);
        }
        unitStarts.erase(found);
      }
    } else if (kind == "unit_retry") {
      ShardAccumulator& acc = shardOf(*value);
      ++acc.health.retries;
      if (strField(*value, "reason") == "stalled") ++acc.health.stalls;
    } else if (kind == "unit_failed") {
      // Blacklist decision; the terminal accounting arrives as the
      // respawned shard's {"status":"failed"} unit_end. Nothing to count.
    } else if (kind == "resource_sample") {
      ShardAccumulator& acc = shardOf(*value);
      acc.health.peakRssBytes =
          std::max(acc.health.peakRssBytes, numField(*value, "rss_bytes"));
      acc.health.peakCpuPermille = std::max(
          acc.health.peakCpuPermille, numField(*value, "cpu_permille"));
    }
  }

  health.medianUnitLatencyMillis = median(allLatencies);
  const double stragglerCutoff =
      options.stragglerFactor * health.medianUnitLatencyMillis +
      options.stragglerSlackMillis;

  for (auto& [index, acc] : shards) {
    ShardHealth& s = acc.health;
    if (acc.spawnSeen) {
      const double until =
          acc.running || !acc.exitSeen ? health.elapsedMillis
                                       : acc.lastExitMillis;
      s.activeMillis = std::max(0.0, until - acc.firstSpawnMillis);
    }
    s.unitsPerSec =
        safeRate(s.unitsCompleted + s.unitsFailed, s.activeMillis / 1000.0);
    s.latencySamples = acc.latencies.size();
    if (!acc.latencies.empty()) {
      double sum = 0.0;
      for (const double l : acc.latencies) sum += l;
      s.meanUnitLatencyMillis = sum / static_cast<double>(acc.latencies.size());
    }
    s.straggler =
        s.latencySamples > 0 && s.meanUnitLatencyMillis > stragglerCutoff;
    s.retryStorm = s.retries >= options.retryStormThreshold;

    health.unitsCompleted += s.unitsCompleted;
    health.unitsFailed += s.unitsFailed;
    health.retries += s.retries;
    health.stalls += s.stalls;
    health.kills += s.kills;
    if (s.peakRssBytes > health.peakRssBytes) {
      health.peakRssBytes = s.peakRssBytes;
      health.peakRssShard = static_cast<std::int32_t>(index);
    }
    if (s.straggler) health.stragglers.push_back(index);
    health.shards.push_back(s);
  }
  health.unitsPerSec = safeRate(health.unitsCompleted + health.unitsFailed,
                                health.elapsedMillis / 1000.0);
  return health;
}

CampaignHealth loadCampaignHealth(const std::string& outDir,
                                  const CampaignHealthOptions& options) {
  const CampaignTraceInputs inputs = discoverCampaignTraceInputs(outDir);
  if (inputs.orchestratorEvents.empty()) {
    throw std::runtime_error(
        "campaign health: no orchestrator event stream in '" + outDir +
        "' (events.jsonl or events.jsonl.tmp) — run the campaign with "
        "telemetry enabled");
  }
  return computeCampaignHealth(
      readJsonlTolerant(inputs.orchestratorEvents).lines, options);
}

std::string campaignHealthJson(const CampaignHealth& health) {
  JsonWriter w;
  w.beginObject();
  w.key("kind").value("ppn-campaign-health");
  w.key("finished").value(health.finished);
  w.key("interrupted").value(health.interrupted);
  w.key("units").value(health.totalUnits);
  w.key("completed").value(health.unitsCompleted);
  w.key("failed").value(health.unitsFailed);
  w.key("retries").value(health.retries);
  w.key("stalls").value(health.stalls);
  w.key("kills").value(health.kills);
  w.key("elapsed_ms").valueFixed(health.elapsedMillis, 3);
  w.key("units_per_sec").valueFixed(health.unitsPerSec, 3);
  w.key("median_unit_latency_ms")
      .valueFixed(health.medianUnitLatencyMillis, 3);
  w.key("peak_rss");
  if (health.peakRssShard < 0) {
    w.null();
  } else {
    w.beginObject();
    w.key("shard").value(static_cast<std::uint64_t>(health.peakRssShard));
    w.key("bytes").valueFixed(health.peakRssBytes, 0);
    w.endObject();
  }
  w.key("shards").beginArray();
  for (const ShardHealth& s : health.shards) {
    w.beginObject();
    w.key("shard").value(s.shard);
    w.key("spawns").value(s.spawns);
    w.key("completed").value(s.unitsCompleted);
    w.key("failed").value(s.unitsFailed);
    w.key("retries").value(s.retries);
    w.key("stalls").value(s.stalls);
    w.key("kills").value(s.kills);
    w.key("active_ms").valueFixed(s.activeMillis, 3);
    w.key("units_per_sec").valueFixed(s.unitsPerSec, 3);
    w.key("latency_samples").value(s.latencySamples);
    w.key("mean_unit_latency_ms").valueFixed(s.meanUnitLatencyMillis, 3);
    w.key("peak_rss_bytes").valueFixed(s.peakRssBytes, 0);
    w.key("peak_cpu_permille").valueFixed(s.peakCpuPermille, 0);
    w.key("straggler").value(s.straggler);
    w.key("retry_storm").value(s.retryStorm);
    w.endObject();
  }
  w.endArray();
  w.key("stragglers").beginArray();
  for (const std::uint32_t shard : health.stragglers) w.value(shard);
  w.endArray();
  w.endObject();
  return w.str();
}

}  // namespace ppn
