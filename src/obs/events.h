// JSONL event sink: streams one JSON object per line for every probe event.
//
// Schema (documented in EXPERIMENTS.md, E20): every line is an object with
// an "event" discriminator and an "elapsed_ms" timestamp (milliseconds since
// the sink was created, steady clock):
//   run_start       {run, num_mobile, num_participants}
//   run_end         {run, silent, named, timed_out, cancelled,
//                    convergence_interactions, total_interactions, wall_millis}
//   fault_injected  {run, at, target: "mobile"|"leader", agent}
//   watchdog_abort  {run, at, budget_millis}
//   cancelled       {run, at}
//   batch_progress  {completed, total, degraded}
//
// The sink also implements ExploreObserver (obs/explore_observer.h), so one
// file carries both simulation and analysis telemetry (E22):
//   explore_progress  {explore, nodes, frontier, edges, dedup_hits,
//                      bytes_estimate, nodes_per_sec, done}
//   phase_start       {explore, phase}
//   phase_end         {explore, phase, wall_millis}
//   explore_truncated {explore, nodes, max_nodes, frontier_size}
//   search_progress   {search, examined, total, solvers, unknown,
//                      candidates_per_sec, done}
//
// Silence checks are deliberately NOT streamed (they fire every
// checkInterval interactions and would dwarf everything else); count them
// with a MetricsRunObserver instead. The explore_truncated line records the
// frontier SIZE only — the full node-id snapshot stays with in-process
// consumers (ExploreTruncatedEvent::frontier), since serialized frontiers of
// multi-million-node graphs would dominate the stream.
//
// batch_progress events arrive once per completed run; the sink throttles
// them to at most one per `progressIntervalMillis` (the batch-final event,
// completed == total, is always written).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/explore_observer.h"
#include "obs/observer.h"

namespace ppn {

class JsonlEventSink final : public RunObserver, public ExploreObserver {
 public:
  /// Opens `path` for writing (truncating); throws std::runtime_error on
  /// failure so a bad --events-out flag fails fast instead of silently
  /// dropping telemetry.
  explicit JsonlEventSink(const std::string& path,
                          std::uint64_t progressIntervalMillis = 500);

  /// Non-owning: writes to `out` (tests, stdout). Defaults to writing every
  /// batch_progress event so tests see them all.
  explicit JsonlEventSink(std::ostream& out,
                          std::uint64_t progressIntervalMillis = 0);

  ~JsonlEventSink() override;

  void onRunStart(const RunStartEvent& e) override;
  void onRunEnd(const RunEndEvent& e) override;
  void onWatchdogAbort(const WatchdogAbortEvent& e) override;
  void onCancelled(const CancelledEvent& e) override;
  void onFaultInjected(const FaultInjectedEvent& e) override;
  void onBatchProgress(const BatchProgressEvent& e) override;

  void onExploreProgress(const ExploreProgressEvent& e) override;
  void onPhaseStart(const ExplorePhaseStartEvent& e) override;
  void onPhaseEnd(const ExplorePhaseEndEvent& e) override;
  void onTruncated(const ExploreTruncatedEvent& e) override;
  void onSearchProgress(const SearchProgressEvent& e) override;

  /// Flushes the underlying stream (also done on destruction).
  void flush();

 private:
  std::uint64_t elapsedMillis() const;
  void writeLine(const std::string& line);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::mutex mu_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t progressIntervalMillis_;
  std::uint64_t lastProgressMillis_ = 0;
  bool anyProgressWritten_ = false;
};

}  // namespace ppn
