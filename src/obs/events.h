// JSONL event sink: streams one JSON object per line for every probe event.
//
// Schema (documented in EXPERIMENTS.md, E20): every line is an object with
// an "event" discriminator and an "elapsed_ms" timestamp (milliseconds since
// the sink was created, steady clock):
//   run_start       {run, num_mobile, num_participants}
//   run_end         {run, silent, named, timed_out, cancelled,
//                    convergence_interactions, total_interactions, wall_millis}
//   fault_injected  {run, at, target: "mobile"|"leader", agent}
//   watchdog_abort  {run, at, budget_millis}
//   cancelled       {run, at}
//   batch_progress  {completed, total, degraded, lanes_live, lanes_retired}
//                   (the lane fields are 0/absent-semantics for scalar batch
//                   drivers; the SoA batch engine reports live-lane occupancy
//                   and cumulative silence retirements per completed block)
//
// The sink also implements ExploreObserver (obs/explore_observer.h), so one
// file carries both simulation and analysis telemetry (E22):
//   explore_progress  {explore, nodes, frontier, edges, dedup_hits,
//                      bytes_estimate, nodes_per_sec, expand_ms, dedup_ms,
//                      append_ms, io_ms, expand_nodes_per_sec,
//                      dedup_nodes_per_sec, done} (per-phase loop timing so
//                      dedup-bound levels are distinguishable from
//                      expand-bound ones)
//   phase_start       {explore, phase}
//   phase_end         {explore, phase, wall_millis}
//   explore_truncated {explore, nodes, max_nodes, frontier_size, max_bytes,
//                      bytes_at_cut, by_budget}
//   search_progress   {search, examined, total, solvers, unknown,
//                      candidates_per_sec, done}
//   memory_sample     {explore, configs_bytes, adjacency_bytes, dedup_bytes,
//                      frontier_bytes, codec_bytes, total_bytes,
//                      high_water_bytes, spill_bytes, spill_runs, rss_bytes,
//                      done} (E27: the MemoryLedger's attributed footprint;
//                      spill_bytes/spill_runs are the on-disk dedup tier,
//                      outside total_bytes; rss_bytes is the
//                      resource_sampler self-sample for drift checks, 0 when
//                      /proc was unreadable)
//
// Silence checks are deliberately NOT streamed (they fire every
// checkInterval interactions and would dwarf everything else); count them
// with a MetricsRunObserver instead. The explore_truncated line records the
// frontier SIZE only — the full node-id snapshot stays with in-process
// consumers (ExploreTruncatedEvent::frontier), since serialized frontiers of
// multi-million-node graphs would dominate the stream.
//
// batch_progress events arrive once per completed run; the sink throttles
// them to at most one per `progressIntervalMillis` (the batch-final event,
// completed == total, is always written).
//
// The sink additionally carries the campaign-orchestration event family
// (E24, emitted by src/campaign/orchestrator.* — not part of any probe
// interface, the orchestrator owns its sink and calls these directly):
//   campaign_start {units, shards, workers, resumed}
//   shard_spawn    {shard, pid, spawn}
//   shard_exit     {shard, pid, code, signal}
//   unit_start     {unit, shard, attempt}
//   unit_end       {unit, shard, attempt, status}       status: ok|degraded|failed
//   unit_retry     {unit, shard, attempt, backoff_ms, reason}
//   unit_failed    {unit, shard, attempts, reason}
//   resource_sample {shard, pid, rss_bytes, vsize_bytes, utime_ms, stime_ms,
//                    cpu_permille, read_bytes, write_bytes} (E25: the
//                    orchestrator's /proc poll of a live shard; io fields are
//                    0 when /proc/<pid>/io was unreadable)
//   campaign_end   {completed, failed, total, interrupted}
//
// Durability (E24): a path-constructed sink writes to `path + ".tmp"` and
// atomically renames onto `path` on close (or destruction), so a consumer
// never observes a torn final artifact — a crash leaves only the .tmp behind.
// For reading back append-only JSONL written by a process that may have been
// killed mid-write (shard checkpoints, orphaned .tmp files), use
// readJsonlTolerant: it accepts a torn FINAL line (the crash signature) while
// still rejecting interior corruption.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/explore_observer.h"
#include "obs/observer.h"
#include "obs/resource_sampler.h"

namespace ppn {

class JsonlEventSink final : public RunObserver, public ExploreObserver {
 public:
  /// Opens `path + ".tmp"` for writing (truncating) and renames onto `path`
  /// on close(); throws std::runtime_error on failure so a bad --events-out
  /// flag fails fast instead of silently dropping telemetry. Pass
  /// `atomicRename = false` to write `path` directly (pre-E24 behavior: a
  /// crash leaves a partial file at the final path).
  explicit JsonlEventSink(const std::string& path,
                          std::uint64_t progressIntervalMillis = 500,
                          bool atomicRename = true);

  /// Non-owning: writes to `out` (tests, stdout). Defaults to writing every
  /// batch_progress event so tests see them all.
  explicit JsonlEventSink(std::ostream& out,
                          std::uint64_t progressIntervalMillis = 0);

  ~JsonlEventSink() override;

  void onRunStart(const RunStartEvent& e) override;
  void onRunEnd(const RunEndEvent& e) override;
  void onWatchdogAbort(const WatchdogAbortEvent& e) override;
  void onCancelled(const CancelledEvent& e) override;
  void onFaultInjected(const FaultInjectedEvent& e) override;
  void onBatchProgress(const BatchProgressEvent& e) override;

  void onExploreProgress(const ExploreProgressEvent& e) override;
  void onPhaseStart(const ExplorePhaseStartEvent& e) override;
  void onPhaseEnd(const ExplorePhaseEndEvent& e) override;
  void onTruncated(const ExploreTruncatedEvent& e) override;
  void onSearchProgress(const SearchProgressEvent& e) override;
  void onMemorySample(const MemorySampleEvent& e) override;

  // Campaign-orchestration events (schema above; called directly by the
  // orchestrator, which owns its sink — no probe interface involved).
  void onCampaignStart(std::uint64_t units, std::uint32_t shards,
                       std::uint32_t workers, bool resumed);
  void onShardSpawn(std::uint32_t shard, std::int64_t pid, std::uint64_t spawn);
  void onShardExit(std::uint32_t shard, std::int64_t pid, int code, int signal);
  void onUnitStart(std::uint64_t unit, std::uint32_t shard,
                   std::uint32_t attempt);
  void onUnitEnd(std::uint64_t unit, std::uint32_t shard, std::uint32_t attempt,
                 const std::string& status);
  void onUnitRetry(std::uint64_t unit, std::uint32_t shard,
                   std::uint32_t attempt, std::uint64_t backoffMillis,
                   const std::string& reason);
  void onUnitFailed(std::uint64_t unit, std::uint32_t shard,
                    std::uint32_t attempts, const std::string& reason);
  void onResourceSample(std::uint32_t shard, const ResourceSample& sample);
  void onCampaignEnd(std::uint64_t completed, std::uint64_t failed,
                     std::uint64_t total, bool interrupted);

  /// Flushes the underlying stream (also done on destruction).
  void flush();

  /// Flush after every line (checkpoint-grade durability: a SIGKILLed writer
  /// loses at most the line being written, which readJsonlTolerant drops).
  /// Off by default — per-line flushing is measurable on chatty run streams;
  /// shard event streams, which write one burst per unit, enable it.
  void setFlushEveryLine(bool flushEveryLine);

  /// Flushes and — for an atomic path sink — renames the temp file onto the
  /// final path. Idempotent; called by the destructor. Returns false when the
  /// rename failed (the data survives at `path + ".tmp"`).
  bool close();

 private:
  std::uint64_t elapsedMillis() const;
  void writeLine(const std::string& line);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::mutex mu_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t progressIntervalMillis_;
  std::uint64_t lastProgressMillis_ = 0;
  bool anyProgressWritten_ = false;
  bool flushEveryLine_ = false;
  std::string finalPath_;  ///< empty for stream sinks or after close()
  std::string tmpPath_;
};

/// Result of a tolerant JSONL read (see header note).
struct JsonlReadResult {
  /// Complete, syntactically valid JSON lines, in file order (no newlines).
  std::vector<std::string> lines;
  /// True when a torn final line (no terminating newline, or invalid JSON on
  /// the last line) was dropped — the signature of a crash mid-write.
  bool torn = false;
};

/// Reads a JSONL file, dropping a torn FINAL line instead of failing the
/// whole file. Throws std::runtime_error when the file cannot be opened, when
/// an interior line is blank or fails to parse (real corruption, not a torn
/// write), or when more than the final line is damaged.
///
/// Line-ending contract (pinned by EventsTest regressions):
///  * CRLF endings are accepted anywhere — the trailing '\r' is stripped
///    before validation and from the returned line, so a stream that passed
///    through a CRLF-translating transport still parses, byte-identically to
///    its LF twin;
///  * a final line with NO trailing newline is always dropped as torn, even
///    when its content happens to be valid JSON: a flushed-per-line writer
///    always terminates lines, so a missing terminator IS the crash
///    signature, and keeping the line would double-count a unit whose write
///    raced the kill.
JsonlReadResult readJsonlTolerant(const std::string& path);

}  // namespace ppn
