// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Built for parallelRunIndexed: counter increments and histogram
// observations go to a *thread-local shard* (one per thread per registry),
// so workers record without contention; snapshot() merges all shards. Slots
// are relaxed atomics written by exactly one thread (the shard owner) and
// read by the snapshotting thread, so recording is wait-free on the fast
// path. Shards are owned by the registry and survive their recording thread,
// so nothing is lost when a batch's worker pool is joined before snapshot().
//
// Gauges are last-write-wins process-wide values (a sharded gauge has no
// meaningful merge), stored as a single heap cell the handle points at.
//
// Usage:
//   MetricsRegistry reg;
//   auto runs = reg.counter("runs_ended");
//   auto conv = reg.histogram("convergence_interactions", {1e3, 1e4, 1e5});
//   reg.add(runs);                // from any thread
//   reg.observe(conv, 8'192.0);
//   std::string doc = reg.toJson();
//
// Registration (counter/gauge/histogram) is mutex-protected and idempotent
// by name, but should complete before concurrent recording begins: a shard
// created mid-batch lazily grows to cover late registrations, which is
// correct but takes the shard lock once.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ppn {

struct CounterHandle {
  std::uint32_t slot = 0;
};

struct GaugeHandle {
  std::atomic<std::int64_t>* cell = nullptr;
};

struct HistogramHandle {
  std::uint32_t slot = 0;     ///< first bucket slot
  std::uint32_t buckets = 0;  ///< bounds.size() + 1 (overflow bucket)
  /// Borrowed view of the registered bounds (immutable, registry-owned);
  /// lets observe() bucket without taking any registry lock.
  const double* bounds = nullptr;
};

/// Point-in-time merged view of a registry; safe to use after the registry
/// keeps recording (values are a consistent-enough relaxed read).
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    std::int64_t value = 0;
  };
  struct Histogram {
    std::string name;
    std::vector<double> bounds;         ///< ascending upper bounds
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 buckets
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  };

  std::vector<Counter> counters;  ///< registration order
  std::vector<Gauge> gauges;
  std::vector<Histogram> histograms;

  /// nullptr when no counter/histogram with that name exists.
  const std::uint64_t* counterValue(std::string_view name) const;
  const std::int64_t* gaugeValue(std::string_view name) const;
  const Histogram* histogramNamed(std::string_view name) const;

  /// {"kind":"ppn-metrics","counters":{...},"gauges":{...},"histograms":{...}}
  std::string toJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent by name: registering an existing name returns its handle.
  CounterHandle counter(const std::string& name);
  GaugeHandle gauge(const std::string& name);
  /// `bounds` must be strictly ascending; a value v lands in the first bucket
  /// with v <= bounds[i], or the final overflow bucket. Re-registering a name
  /// returns the existing handle (bounds must then match — logic_error if not).
  HistogramHandle histogram(const std::string& name, std::vector<double> bounds);

  /// Wait-free fast path on the caller's thread-local shard.
  void add(CounterHandle h, std::uint64_t delta = 1);
  void observe(HistogramHandle h, double value);

  static void set(GaugeHandle h, std::int64_t value) {
    h.cell->store(value, std::memory_order_relaxed);
  }
  static std::int64_t get(GaugeHandle h) {
    return h.cell->load(std::memory_order_relaxed);
  }

  MetricsSnapshot snapshot() const;
  std::string toJson() const { return snapshot().toJson(); }

 private:
  struct Shard;
  Shard& localShard();

  const std::uint64_t id_;  ///< process-unique; keys the thread-local cache
  mutable std::mutex mu_;   ///< registration tables + shard list
  std::uint32_t nextSlot_ = 0;

  struct CounterMeta {
    std::string name;
    std::uint32_t slot;
  };
  struct GaugeMeta {
    std::string name;
    std::unique_ptr<std::atomic<std::int64_t>> cell;
  };
  struct HistogramMeta {
    std::string name;
    std::vector<double> bounds;
    std::uint32_t slot;  ///< layout: bounds.size()+1 buckets, count, sum bits
  };
  std::vector<CounterMeta> counters_;
  std::vector<GaugeMeta> gauges_;
  std::vector<HistogramMeta> histograms_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ppn
