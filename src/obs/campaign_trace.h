// E25: campaign trace assembler — merges a campaign's orchestrator event
// stream and its per-shard JSONL event streams into one Chrome-trace /
// Perfetto timeline (via ChromeTraceWriter's post-hoc assembly API).
//
// Layout of the assembled trace:
//  * pid 0 is the ORCHESTRATOR process. tid 0 carries the campaign-lifetime
//    slice; tid shard+1 carries that shard as the orchestrator saw it:
//    "shard-run" slices per spawn, "unit <id>" slices between unit_start and
//    unit_end, and instants for unit_retry ("shard_stalled" when the retry
//    reason is a stall), unit_failed, and signal-terminated shard exits
//    ("shard_killed").
//  * each shard OS PID is its own process (Perfetto renders it as a separate
//    process group): "run <id>" slices lane-allocated onto tids 1.. so
//    overlapping runs from threaded shard executors never corrupt B/E
//    nesting, explore phase slices on a dedicated tid, fault/watchdog/
//    cancel/truncation instants, and batch/explore/search counter tracks.
//  * resource_sample events become "rss_bytes" / "cpu_permille" counter
//    tracks on the sampled shard's PID, so memory and CPU line up under the
//    process that spent them.
//
// This header lives in obs (below src/campaign/ in the dependency order), so
// it discovers the campaign directory layout by filesystem convention —
// events.jsonl (falling back to the in-flight events.jsonl.tmp of a live or
// crashed campaign) and shards/shard_*.events.jsonl — instead of including
// campaign headers. Timestamps are the streams' own elapsed_ms values;
// shard-stream clocks (which start at shard spawn) are re-based onto the
// campaign timeline at their shard's last observed shard_spawn. A shard
// respawn truncates that shard's stream, so the surviving stream always
// belongs to the last spawn.
//
// The assembler never leaves a B unbalanced: open slices are closed at the
// retry's next unit_start, at shard_exit, and at end-of-stream, so the
// output passes the CI trace validator even for interrupted campaigns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace ppn {

/// Event-stream files feeding one assembled trace.
struct CampaignTraceInputs {
  /// Orchestrator stream path; empty when the directory holds neither
  /// events.jsonl nor events.jsonl.tmp.
  std::string orchestratorEvents;
  /// True when orchestratorEvents is the in-flight .tmp (live or crashed
  /// campaign) rather than the renamed final stream.
  bool orchestratorLive = false;

  struct ShardStream {
    std::uint32_t shard = 0;
    std::string path;
  };
  /// Per-shard streams, ascending shard index.
  std::vector<ShardStream> shardStreams;

  bool empty() const { return orchestratorEvents.empty() && shardStreams.empty(); }
};

/// Scans a campaign output directory for its event streams (see header
/// note). Never throws on a missing/partial layout — absent files are simply
/// absent from the result.
CampaignTraceInputs discoverCampaignTraceInputs(const std::string& outDir);

/// What the assembly consumed and produced (for the CLI report and tests).
struct CampaignTraceStats {
  std::uint64_t orchestratorLines = 0;  ///< parsed orchestrator events
  std::uint64_t shardLines = 0;         ///< parsed shard-stream events
  /// Lines skipped as not-an-event (unparseable, or missing event/elapsed_ms
  /// fields). Torn final lines are dropped by readJsonlTolerant upstream and
  /// are not counted here.
  std::uint64_t skippedLines = 0;
  std::uint64_t slices = 0;     ///< duration (B) events emitted
  std::uint64_t instants = 0;   ///< instant (i) events emitted
  std::uint64_t counters = 0;   ///< counter (C) events emitted
  /// Slices force-closed at a retry boundary, shard exit, or end-of-stream
  /// (nonzero for interrupted/crashed campaigns; benign).
  std::uint64_t forcedCloses = 0;
  /// Distinct shard OS pids that appear as process tracks, ascending.
  std::vector<std::int64_t> shardPids;
};

/// Replays `inputs` onto `writer`. Throws std::runtime_error when a stream
/// file cannot be read or holds interior corruption (readJsonlTolerant
/// semantics); a torn final line — the live-campaign signature — is fine.
CampaignTraceStats assembleCampaignTrace(const CampaignTraceInputs& inputs,
                                         ChromeTraceWriter& writer);

}  // namespace ppn
