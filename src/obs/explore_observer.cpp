#include "obs/explore_observer.h"

#include <chrono>

namespace ppn {

namespace {

std::uint64_t nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

PhaseScope::PhaseScope(ExploreObserver* obs, std::uint64_t exploreId,
                       const char* phase)
    : obs_(obs), exploreId_(exploreId), phase_(phase) {
  if (obs_ == nullptr) return;
  startNanos_ = nowNanos();
  obs_->onPhaseStart(ExplorePhaseStartEvent{exploreId_, phase_});
}

PhaseScope::~PhaseScope() {
  if (obs_ == nullptr) return;
  const double wallMillis =
      static_cast<double>(nowNanos() - startNanos_) / 1e6;
  obs_->onPhaseEnd(ExplorePhaseEndEvent{exploreId_, phase_, wallMillis});
}

}  // namespace ppn
