#include "obs/probes.h"

namespace ppn {

MetricsRunObserver::MetricsRunObserver(MetricsRegistry& registry)
    : registry_(&registry),
      runsStarted_(registry.counter("runs_started")),
      runsEnded_(registry.counter("runs_ended")),
      runsConverged_(registry.counter("runs_converged")),
      runsNamed_(registry.counter("runs_named")),
      runsTimedOut_(registry.counter("runs_timed_out")),
      runsCancelled_(registry.counter("runs_cancelled")),
      silenceChecks_(registry.counter("silence_checks")),
      faultsInjected_(registry.counter("faults_injected")),
      watchdogAborts_(registry.counter("watchdog_aborts")),
      batchCompleted_(registry.gauge("batch_completed")),
      batchTotal_(registry.gauge("batch_total")),
      batchDegraded_(registry.gauge("batch_degraded")),
      batchLanesLive_(registry.gauge("batch_lanes_live")),
      batchLanesRetired_(registry.gauge("batch_lanes_retired")),
      convergenceInteractions_(registry.histogram(
          "convergence_interactions",
          {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8})) {}

void MetricsRunObserver::onRunStart(const RunStartEvent&) {
  registry_->add(runsStarted_);
}

void MetricsRunObserver::onRunEnd(const RunEndEvent& e) {
  registry_->add(runsEnded_);
  if (e.silent) {
    registry_->add(runsConverged_);
    registry_->observe(convergenceInteractions_,
                       static_cast<double>(e.convergenceInteractions));
  }
  if (e.named) registry_->add(runsNamed_);
  if (e.timedOut) registry_->add(runsTimedOut_);
  if (e.cancelled) registry_->add(runsCancelled_);
}

void MetricsRunObserver::onSilenceCheck(const SilenceCheckEvent&) {
  registry_->add(silenceChecks_);
}

void MetricsRunObserver::onWatchdogAbort(const WatchdogAbortEvent&) {
  registry_->add(watchdogAborts_);
}

void MetricsRunObserver::onCancelled(const CancelledEvent&) {
  // Counted at run_end (the cancelled flag) — this hook fires at the abort
  // point itself, which may precede run_end within the same run.
}

void MetricsRunObserver::onFaultInjected(const FaultInjectedEvent&) {
  registry_->add(faultsInjected_);
}

void MetricsRunObserver::onBatchProgress(const BatchProgressEvent& e) {
  MetricsRegistry::set(batchCompleted_, static_cast<std::int64_t>(e.completed));
  MetricsRegistry::set(batchTotal_, static_cast<std::int64_t>(e.total));
  MetricsRegistry::set(batchDegraded_, static_cast<std::int64_t>(e.degraded));
  MetricsRegistry::set(batchLanesLive_, static_cast<std::int64_t>(e.lanesLive));
  MetricsRegistry::set(batchLanesRetired_,
                       static_cast<std::int64_t>(e.lanesRetired));
}

MetricsExploreObserver::MetricsExploreObserver(MetricsRegistry& registry)
    : registry_(&registry),
      explorations_(registry.counter("explorations")),
      explorationsTruncated_(registry.counter("explorations_truncated")),
      explorePhases_(registry.counter("explore_phases")),
      searchCandidates_(registry.counter("search_candidates")),
      exploreNodes_(registry.gauge("explore_nodes")),
      exploreEdges_(registry.gauge("explore_edges")),
      exploreDedupHits_(registry.gauge("explore_dedup_hits")),
      exploreBytesEstimate_(registry.gauge("explore_bytes_estimate")),
      searchSolvers_(registry.gauge("search_solvers")),
      searchUnknown_(registry.gauge("search_unknown")),
      memConfigsBytes_(registry.gauge("mem_configs_bytes")),
      memAdjacencyBytes_(registry.gauge("mem_adjacency_bytes")),
      memDedupBytes_(registry.gauge("mem_dedup_bytes")),
      memFrontierBytes_(registry.gauge("mem_frontier_bytes")),
      memCodecBytes_(registry.gauge("mem_codec_bytes")),
      memTotalBytes_(registry.gauge("mem_total_bytes")),
      memHighWaterBytes_(registry.gauge("mem_high_water_bytes")),
      memSpillBytes_(registry.gauge("mem_spill_bytes")),
      memSpillRuns_(registry.gauge("mem_spill_runs")),
      explorePhaseMillis_(registry.histogram(
          "explore_phase_millis", {1e-1, 1e0, 1e1, 1e2, 1e3, 1e4, 1e5})) {}

void MetricsExploreObserver::onExploreProgress(const ExploreProgressEvent& e) {
  if (e.done) registry_->add(explorations_);
  MetricsRegistry::set(exploreNodes_, static_cast<std::int64_t>(e.nodes));
  MetricsRegistry::set(exploreEdges_, static_cast<std::int64_t>(e.edges));
  MetricsRegistry::set(exploreDedupHits_,
                       static_cast<std::int64_t>(e.dedupHits));
  MetricsRegistry::set(exploreBytesEstimate_,
                       static_cast<std::int64_t>(e.bytesEstimate));
}

void MetricsExploreObserver::onPhaseEnd(const ExplorePhaseEndEvent& e) {
  registry_->add(explorePhases_);
  registry_->observe(explorePhaseMillis_, e.wallMillis);
}

void MetricsExploreObserver::onTruncated(const ExploreTruncatedEvent&) {
  registry_->add(explorationsTruncated_);
}

void MetricsExploreObserver::onMemorySample(const MemorySampleEvent& e) {
  MetricsRegistry::set(memConfigsBytes_,
                       static_cast<std::int64_t>(e.configsBytes));
  MetricsRegistry::set(memAdjacencyBytes_,
                       static_cast<std::int64_t>(e.adjacencyBytes));
  MetricsRegistry::set(memDedupBytes_, static_cast<std::int64_t>(e.dedupBytes));
  MetricsRegistry::set(memFrontierBytes_,
                       static_cast<std::int64_t>(e.frontierBytes));
  MetricsRegistry::set(memCodecBytes_, static_cast<std::int64_t>(e.codecBytes));
  MetricsRegistry::set(memTotalBytes_, static_cast<std::int64_t>(e.totalBytes));
  MetricsRegistry::set(memHighWaterBytes_,
                       static_cast<std::int64_t>(e.highWaterBytes));
  MetricsRegistry::set(memSpillBytes_, static_cast<std::int64_t>(e.spillBytes));
  MetricsRegistry::set(memSpillRuns_, static_cast<std::int64_t>(e.spillRuns));
}

void MetricsExploreObserver::onSearchProgress(const SearchProgressEvent& e) {
  if (e.searchId != lastSearchId_) {
    lastSearchId_ = e.searchId;
    lastExamined_ = 0;
  }
  if (e.examined > lastExamined_) {
    registry_->add(searchCandidates_, e.examined - lastExamined_);
    lastExamined_ = e.examined;
  }
  MetricsRegistry::set(searchSolvers_, static_cast<std::int64_t>(e.solvers));
  MetricsRegistry::set(searchUnknown_, static_cast<std::int64_t>(e.unknown));
}

}  // namespace ppn
