// Execution traces (paper, Section 2: an execution is the sequence
// C0, t1, C1, t2, ... of configurations and transitions). The recorder keeps
// the interaction, whether it was null, and the resulting configuration, so
// tests and examples can assert execution-level properties (e.g. the
// reduced-execution invariant of Section 3.1) and render runs for humans.
#pragma once

#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/engine.h"
#include "sched/scheduler.h"

namespace ppn {

struct TraceStep {
  Interaction interaction;
  bool changed = false;
  Configuration after;
};

struct Trace {
  Configuration start;
  std::vector<TraceStep> steps;

  std::size_t size() const { return steps.size(); }

  /// Number of non-null steps.
  std::size_t changes() const;

  /// Interaction index of the last change (0 when none).
  std::size_t lastChangeIndex() const;

  /// Per-agent count of name changes along the trace (projection-aware).
  std::vector<std::uint32_t> renamesPerAgent(const Protocol& proto) const;

  /// Multi-line rendering: one "t: [config] (i<->j)" line per step; passing
  /// the protocol adds leader-state descriptions. `maxSteps` truncates long
  /// traces (0 = all).
  std::string render(const Protocol* proto = nullptr,
                     std::size_t maxSteps = 0) const;

  /// JSONL export in the telemetry event format (EXPERIMENTS.md, E20): a
  /// trace_start line with the initial configuration, then one trace_step
  /// line per step ({t, initiator, responder, changed, config, leader?}).
  /// Passing the protocol adds each step's projected "names" array, so
  /// recorded executions can be replayed/diffed offline against the
  /// renaming telemetry of a live run. Every line is a valid JSON object.
  std::string toJsonl(const Protocol* proto = nullptr) const;
};

/// Steps `engine` with `sched` for up to `maxInteractions`, recording every
/// step; stops early once silent (checked every `checkInterval` steps).
Trace recordRun(Engine& engine, Scheduler& sched,
                std::uint64_t maxInteractions,
                std::uint64_t checkInterval = 16);

}  // namespace ppn
