#include "sim/runner.h"

#include <stdexcept>
#include <thread>

#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"

namespace ppn {

RunOutcome runUntilSilent(Engine& engine, Scheduler& sched,
                          const RunLimits& limits) {
  RunOutcome out;
  out.numMobile = engine.numMobile();
  const std::uint64_t interval = std::max<std::uint64_t>(1, limits.checkInterval);

  bool silent = engine.silent();
  std::uint64_t steps = 0;
  while (!silent && steps < limits.maxInteractions) {
    const std::uint64_t burst =
        std::min(interval, limits.maxInteractions - steps);
    for (std::uint64_t i = 0; i < burst; ++i) engine.step(sched.next());
    steps += burst;
    silent = engine.silent();
  }

  out.silent = silent;
  out.namingSolved = silent && engine.namingSolved();
  out.totalInteractions = engine.totalInteractions();
  out.nonNullInteractions = engine.nonNullInteractions();
  out.convergenceInteractions =
      silent ? engine.lastChangeAt() : engine.totalInteractions();
  out.finalConfig = engine.config();
  return out;
}

SchedulerKind parseSchedulerKind(const std::string& s) {
  if (s == "random") return SchedulerKind::kRandom;
  if (s == "skewed") return SchedulerKind::kSkewed;
  if (s == "round-robin") return SchedulerKind::kRoundRobin;
  if (s == "tournament") return SchedulerKind::kTournament;
  throw std::invalid_argument("unknown scheduler kind '" + s + "'");
}

std::string schedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kSkewed:
      return "skewed";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kTournament:
      return "tournament";
  }
  return "?";
}

std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind,
                                         std::uint32_t numParticipants,
                                         std::uint64_t seed, double skew) {
  switch (kind) {
    case SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>(numParticipants, seed);
    case SchedulerKind::kSkewed: {
      std::vector<double> weights(numParticipants);
      for (std::uint32_t i = 0; i < numParticipants; ++i) {
        weights[i] = 1.0 + skew * static_cast<double>(i) /
                               static_cast<double>(
                                   std::max<std::uint32_t>(1, numParticipants - 1));
      }
      return std::make_unique<SkewedRandomScheduler>(std::move(weights), seed);
    }
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(numParticipants);
    case SchedulerKind::kTournament:
      return std::make_unique<TournamentScheduler>(numParticipants);
  }
  throw std::logic_error("unreachable scheduler kind");
}

BatchResult runBatch(const Protocol& proto, const BatchSpec& spec) {
  BatchResult result;
  result.runs = spec.runs;

  // Derive every run's inputs sequentially so results do not depend on the
  // thread count or scheduling order.
  struct RunInput {
    Configuration start;
    std::uint64_t schedulerSeed;
  };
  Rng master(spec.seed);
  std::vector<RunInput> inputs;
  inputs.reserve(spec.runs);
  for (std::uint32_t r = 0; r < spec.runs; ++r) {
    Rng runRng = master.split();
    Configuration start =
        spec.init == InitKind::kUniform
            ? uniformConfiguration(proto, spec.numMobile)
            : arbitraryConfiguration(proto, spec.numMobile, runRng);
    inputs.push_back(RunInput{std::move(start), runRng.next()});
  }

  std::vector<RunOutcome> outcomes(spec.runs);
  auto executeRange = [&](std::uint32_t begin, std::uint32_t end) {
    for (std::uint32_t r = begin; r < end; ++r) {
      Engine engine(proto, inputs[r].start);
      auto sched = makeScheduler(spec.sched, engine.numParticipants(),
                                 inputs[r].schedulerSeed);
      outcomes[r] = runUntilSilent(engine, *sched, spec.limits);
    }
  };

  std::uint32_t workers = spec.threads == 0
                              ? std::max(1u, std::thread::hardware_concurrency())
                              : spec.threads;
  workers = std::min(workers, std::max(1u, spec.runs));
  if (workers <= 1) {
    executeRange(0, spec.runs);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const std::uint32_t chunk = (spec.runs + workers - 1) / workers;
    for (std::uint32_t w = 0; w < workers; ++w) {
      const std::uint32_t begin = w * chunk;
      const std::uint32_t end = std::min(spec.runs, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back(executeRange, begin, end);
    }
    for (auto& t : pool) t.join();
  }

  std::vector<double> convergence;
  std::vector<double> parallel;
  for (const RunOutcome& out : outcomes) {
    if (out.silent) {
      ++result.converged;
      if (out.namingSolved) ++result.named;
      convergence.push_back(static_cast<double>(out.convergenceInteractions));
      parallel.push_back(out.parallelTime());
    }
  }
  result.convergenceInteractions = summarize(std::move(convergence));
  result.parallelTime = summarize(std::move(parallel));
  return result;
}

}  // namespace ppn
