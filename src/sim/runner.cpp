#include "sim/runner.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/compiled.h"

#include "sched/deterministic_schedulers.h"
#include "sched/random_scheduler.h"
#include "util/seed.h"

namespace ppn {

ConvergenceSample sampleConvergence(const Engine& engine,
                                    std::uint64_t runId) {
  ConvergenceSample s;
  s.runId = runId;
  s.interactions = engine.totalInteractions();
  const Protocol& proto = engine.protocol();
  std::unordered_map<StateId, std::uint32_t> counts;
  for (const StateId st : engine.config().mobile) ++counts[proto.nameOf(st)];
  s.distinctNames = static_cast<std::uint32_t>(counts.size());
  s.occupancy.reserve(counts.size());
  for (const auto& [name, c] : counts) {
    s.occupancy.push_back(c);
    if (c > 1) s.collisions += c;
  }
  std::sort(s.occupancy.begin(), s.occupancy.end(),
            std::greater<std::uint32_t>());
  return s;
}

RunEndPairGuard::RunEndPairGuard(RunObserver* observer,
                                 FlightRecorder* recorder, const Engine& engine,
                                 std::uint64_t runId)
    : observer_(observer),
      recorder_(recorder),
      engine_(engine),
      runId_(runId),
      started_(std::chrono::steady_clock::now()) {}

RunEndPairGuard::~RunEndPairGuard() {
  if (!armed_) return;
  // Unwinding with the run unfinished: preserve the ring first (the dump path
  // must never throw — dumpToConfiguredPath reports failure by return value),
  // then keep the event stream's run_start/run_end pairing intact.
  if (recorder_ != nullptr) {
    recorder_->record(sampleConvergence(engine_, runId_));
    recorder_->dumpToConfiguredPath("exception unwind run " +
                                    std::to_string(runId_));
  }
  if (observer_ != nullptr) {
    const double wallMillis = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - started_)
                                  .count();
    observer_->onRunEnd(RunEndEvent{runId_, false, false, false, false,
                                    engine_.totalInteractions(),
                                    engine_.totalInteractions(), wallMillis});
  }
}

RunOutcome runUntilSilent(Engine& engine, Scheduler& sched,
                          const RunLimits& limits, const CancelToken* cancel,
                          RunObserver* observer, std::uint64_t runId,
                          FlightRecorder* recorder) {
  using Clock = std::chrono::steady_clock;
  RunOutcome out;
  out.numMobile = engine.numMobile();
  const std::uint64_t interval = std::max<std::uint64_t>(1, limits.checkInterval);
  const bool watch = limits.maxWallMillis > 0;
  const Clock::time_point started = (watch || observer != nullptr)
                                        ? Clock::now()
                                        : Clock::time_point{};
  const Clock::time_point deadline =
      watch ? started + std::chrono::milliseconds(limits.maxWallMillis)
            : Clock::time_point{};

  if (observer != nullptr) {
    observer->onRunStart(RunStartEvent{runId, engine.numMobile(),
                                       engine.numParticipants()});
  }
  RunEndPairGuard pairGuard(observer, recorder, engine, runId);

  bool silent = engine.silent();
  if (observer != nullptr) {
    observer->onSilenceCheck(
        SilenceCheckEvent{runId, engine.totalInteractions(), silent});
  }
  std::uint64_t steps = 0;
  std::uint64_t nextSampleAt =
      recorder != nullptr ? recorder->stride() : 0;
  while (!silent && steps < limits.maxInteractions) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      out.cancelled = true;
      if (observer != nullptr) {
        observer->onCancelled(CancelledEvent{runId, engine.totalInteractions()});
      }
      if (recorder != nullptr) {
        recorder->record(sampleConvergence(engine, runId));
      }
      break;
    }
    if (watch && Clock::now() >= deadline) {
      out.timedOut = true;
      if (observer != nullptr) {
        observer->onWatchdogAbort(WatchdogAbortEvent{
            runId, engine.totalInteractions(), limits.maxWallMillis});
      }
      if (recorder != nullptr) {
        recorder->record(sampleConvergence(engine, runId));
        recorder->dumpToConfiguredPath("watchdog_abort run " +
                                       std::to_string(runId));
      }
      break;
    }
    std::uint64_t burst = std::min(interval, limits.maxInteractions - steps);
    if (recorder != nullptr && nextSampleAt > steps) {
      burst = std::min(burst, nextSampleAt - steps);
    }
    engine.runBurst(sched, burst);
    steps += burst;
    if (recorder != nullptr && steps == nextSampleAt) {
      recorder->record(sampleConvergence(engine, runId));
      nextSampleAt += recorder->stride();
    }
    silent = engine.silent();
    if (observer != nullptr) {
      observer->onSilenceCheck(
          SilenceCheckEvent{runId, engine.totalInteractions(), silent});
    }
  }

  out.silent = silent;
  out.namingSolved = silent && engine.namingSolved();
  out.totalInteractions = engine.totalInteractions();
  out.nonNullInteractions = engine.nonNullInteractions();
  out.convergenceInteractions =
      silent ? engine.lastChangeAt() : engine.totalInteractions();
  out.finalConfig = engine.config();
  pairGuard.disarm();
  if (observer != nullptr) {
    const double wallMillis =
        std::chrono::duration<double, std::milli>(Clock::now() - started)
            .count();
    observer->onRunEnd(RunEndEvent{runId, out.silent, out.namingSolved,
                                   out.timedOut, out.cancelled,
                                   out.convergenceInteractions,
                                   out.totalInteractions, wallMillis});
  }
  return out;
}

void parallelRunIndexed(
    std::uint32_t count, std::uint32_t threads,
    const std::function<void(std::uint32_t, CancelToken&)>& fn) {
  std::uint32_t workers = threads == 0
                              ? std::max(1u, std::thread::hardware_concurrency())
                              : threads;
  workers = std::min(workers, std::max(1u, count));

  CancelToken cancel{false};
  std::mutex errorMutex;
  std::uint32_t errorIndex = std::numeric_limits<std::uint32_t>::max();
  std::exception_ptr error;
  std::atomic<std::uint32_t> nextIndex{0};

  auto work = [&]() {
    for (;;) {
      const std::uint32_t i = nextIndex.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (cancel.load(std::memory_order_relaxed)) return;
      try {
        fn(i, cancel);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(errorMutex);
          // Keep the exception of the lowest index so the rethrown error is
          // deterministic regardless of worker interleaving.
          if (i < errorIndex) {
            errorIndex = i;
            error = std::current_exception();
          }
        }
        cancel.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);
}

SchedulerKind parseSchedulerKind(const std::string& s) {
  if (s == "random") return SchedulerKind::kRandom;
  if (s == "skewed") return SchedulerKind::kSkewed;
  if (s == "round-robin") return SchedulerKind::kRoundRobin;
  if (s == "tournament") return SchedulerKind::kTournament;
  throw std::invalid_argument("unknown scheduler kind '" + s + "'");
}

std::string schedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kSkewed:
      return "skewed";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kTournament:
      return "tournament";
  }
  return "?";
}

std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind,
                                         std::uint32_t numParticipants,
                                         std::uint64_t seed, double skew) {
  switch (kind) {
    case SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>(numParticipants, seed);
    case SchedulerKind::kSkewed: {
      std::vector<double> weights(numParticipants);
      for (std::uint32_t i = 0; i < numParticipants; ++i) {
        weights[i] = 1.0 + skew * static_cast<double>(i) /
                               static_cast<double>(
                                   std::max<std::uint32_t>(1, numParticipants - 1));
      }
      return std::make_unique<SkewedRandomScheduler>(std::move(weights), seed);
    }
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(numParticipants);
    case SchedulerKind::kTournament:
      return std::make_unique<TournamentScheduler>(numParticipants);
  }
  throw std::logic_error("unreachable scheduler kind");
}

BatchResult summarizeBatch(const std::vector<RunOutcome>& outcomes) {
  BatchResult result;
  result.runs = static_cast<std::uint32_t>(outcomes.size());
  std::vector<double> convergence;
  std::vector<double> parallel;
  for (const RunOutcome& out : outcomes) {
    if (out.timedOut) ++result.timedOut;
    if (out.silent) {
      ++result.converged;
      if (out.namingSolved) ++result.named;
      convergence.push_back(static_cast<double>(out.convergenceInteractions));
      parallel.push_back(out.parallelTime());
    }
  }
  result.degraded = result.timedOut > 0;
  result.convergenceInteractions = summarize(std::move(convergence));
  result.parallelTime = summarize(std::move(parallel));
  return result;
}

BatchResult runBatch(const Protocol& proto, const BatchSpec& spec) {

  // Compile the protocol once per batch; the flat tables are read-only and
  // shared by every worker's engine. A protocol that cannot be compiled
  // (state space too large, or a delta that is not closed — which the
  // interpreted path tolerates until the bad state is actually hit) simply
  // stays on the interpreted path: outcomes are bit-identical either way.
  std::optional<CompiledProtocol> compiled;
  if (spec.compiled && CompiledProtocol::compilable(proto)) {
    try {
      compiled.emplace(proto);
    } catch (const std::invalid_argument&) {
      compiled.reset();
    }
  }

  // Derive every run's randomness sequentially so results do not depend on
  // the thread count or scheduling order. The start configuration itself is
  // built inside the worker from the pre-split per-run generator (still
  // deterministic, and a throwing arbitraryConfiguration is then captured by
  // parallelRunIndexed instead of escaping a worker thread).
  std::vector<Rng> runRngs = splitRunRngs(spec.seed, spec.runs);

  std::vector<RunOutcome> outcomes(spec.runs);
  std::atomic<std::uint32_t> progressCompleted{0};
  std::atomic<std::uint32_t> progressDegraded{0};
  parallelRunIndexed(
      spec.runs, spec.threads,
      [&](std::uint32_t r, CancelToken& cancel) {
        Rng runRng = runRngs[r];
        Configuration start =
            spec.init == InitKind::kUniform
                ? uniformConfiguration(proto, spec.numMobile)
                : arbitraryConfiguration(proto, spec.numMobile, runRng);
        Engine engine(proto, std::move(start));
        if (compiled.has_value()) engine.attachCompiled(&*compiled);
        auto sched =
            makeScheduler(spec.sched, engine.numParticipants(), runRng.next());
        const std::uint64_t runId = spec.runIdBase + r;
        engine.attachObserver(spec.observer, runId);
        outcomes[r] = runUntilSilent(engine, *sched, spec.limits, &cancel,
                                     spec.observer, runId, spec.recorder);
        if (spec.observer != nullptr) {
          if (outcomes[r].timedOut) {
            progressDegraded.fetch_add(1, std::memory_order_relaxed);
          }
          const std::uint32_t done =
              progressCompleted.fetch_add(1, std::memory_order_relaxed) + 1;
          spec.observer->onBatchProgress(BatchProgressEvent{
              done, spec.runs,
              progressDegraded.load(std::memory_order_relaxed)});
        }
      });

  return summarizeBatch(outcomes);
}

}  // namespace ppn
