// Transient-fault injection for exercising self-stabilization claims.
//
// A transient fault arbitrarily corrupts volatile memory: here, it overwrites
// the states of a chosen number of mobile agents (and optionally the leader)
// with uniform-random values. A self-stabilizing protocol (Props 12, 13, 16)
// must re-converge afterwards; protocols relying on initialization (Props 14,
// 17, Protocol 1) may be driven to a wrong stable answer, which the
// selfstab_recovery bench demonstrates.
#pragma once

#include <cstdint>

#include "core/engine.h"
#include "sched/scheduler.h"
#include "sim/runner.h"
#include "util/rng.h"

namespace ppn {

struct FaultPlan {
  /// How many distinct mobile agents to corrupt. Contract: clamped to N
  /// (requesting more than the population corrupts every agent exactly once);
  /// 0 leaves every mobile state untouched.
  std::uint32_t corruptAgents = 1;
  /// Whether to also corrupt the leader state (drawn from allLeaderStates()).
  /// Contract: silently ignored when the protocol has no leader or cannot
  /// enumerate its leader states.
  bool corruptLeader = false;
};

/// Applies one transient fault to the live configuration, honoring the
/// FaultPlan contract above. A plan that corrupts nothing (zero agents, no
/// applicable leader corruption) is a no-op and never throws.
void injectFault(Engine& engine, const FaultPlan& plan, Rng& rng);

struct RecoveryOutcome {
  bool initiallyConverged = false;  ///< pre-fault convergence reached
  bool recovered = false;           ///< silent again after the fault
  bool recoveredNamed = false;      ///< ... with correct naming
  /// Interactions from the fault to the post-fault convergence (exact).
  std::uint64_t recoveryInteractions = 0;
};

/// Converges `engine`, injects one fault, converges again and reports the
/// recovery cost. The scheduler keeps running across the fault (a transient
/// fault does not reset the schedule).
RecoveryOutcome measureRecovery(Engine& engine, Scheduler& sched,
                                const FaultPlan& plan, const RunLimits& limits,
                                Rng& rng);

}  // namespace ppn
