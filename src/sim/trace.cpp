#include "sim/trace.h"

#include "util/json.h"

namespace ppn {

std::size_t Trace::changes() const {
  std::size_t n = 0;
  for (const auto& s : steps) n += s.changed ? 1 : 0;
  return n;
}

std::size_t Trace::lastChangeIndex() const {
  for (std::size_t i = steps.size(); i > 0; --i) {
    if (steps[i - 1].changed) return i - 1;
  }
  return 0;
}

std::vector<std::uint32_t> Trace::renamesPerAgent(const Protocol& proto) const {
  std::vector<std::uint32_t> renames(start.numMobile(), 0);
  const Configuration* prev = &start;
  for (const auto& step : steps) {
    for (std::size_t a = 0; a < renames.size(); ++a) {
      if (proto.nameOf(prev->mobile[a]) != proto.nameOf(step.after.mobile[a])) {
        ++renames[a];
      }
    }
    prev = &step.after;
  }
  return renames;
}

std::string Trace::render(const Protocol* proto, std::size_t maxSteps) const {
  auto describe = [&](const Configuration& c) {
    if (proto != nullptr && c.leader.has_value()) {
      return c.toString(proto->describeLeaderState(*c.leader));
    }
    return c.toString();
  };
  std::string out = "t=0    " + describe(start) + "\n";
  const std::size_t limit =
      (maxSteps == 0) ? steps.size() : std::min(maxSteps, steps.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& s = steps[i];
    out += "t=" + std::to_string(i + 1) + "  (" +
           std::to_string(s.interaction.initiator) + "->" +
           std::to_string(s.interaction.responder) + ")" +
           (s.changed ? " " : " [null] ") + describe(s.after) + "\n";
  }
  if (limit < steps.size()) {
    out += "... (" + std::to_string(steps.size() - limit) + " more steps)\n";
  }
  return out;
}

std::string Trace::toJsonl(const Protocol* proto) const {
  auto writeConfig = [proto](JsonWriter& w, const Configuration& c) {
    w.key("config").beginArray();
    for (const StateId s : c.mobile) w.value(s);
    w.endArray();
    if (c.leader.has_value()) w.key("leader").value(*c.leader);
    if (proto != nullptr) {
      w.key("names").beginArray();
      for (const StateId s : c.mobile) w.value(proto->nameOf(s));
      w.endArray();
    }
  };

  std::string out;
  {
    JsonWriter w;
    w.beginObject();
    w.key("event").value("trace_start");
    w.key("num_mobile").value(start.numMobile());
    writeConfig(w, start);
    w.endObject();
    out += w.str();
    out += '\n';
  }
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const TraceStep& s = steps[i];
    JsonWriter w;
    w.beginObject();
    w.key("event").value("trace_step");
    w.key("t").value(static_cast<std::uint64_t>(i + 1));
    w.key("initiator").value(s.interaction.initiator);
    w.key("responder").value(s.interaction.responder);
    w.key("changed").value(s.changed);
    writeConfig(w, s.after);
    w.endObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

Trace recordRun(Engine& engine, Scheduler& sched,
                std::uint64_t maxInteractions, std::uint64_t checkInterval) {
  Trace trace;
  trace.start = engine.config();
  const std::uint64_t interval = std::max<std::uint64_t>(1, checkInterval);
  bool silent = engine.silent();
  std::uint64_t steps = 0;
  while (!silent && steps < maxInteractions) {
    const Interaction it = sched.next();
    const bool changed = engine.step(it);
    trace.steps.push_back(TraceStep{it, changed, engine.config()});
    ++steps;
    if (steps % interval == 0) silent = engine.silent();
  }
  return trace;
}

}  // namespace ppn
