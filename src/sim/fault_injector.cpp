#include "sim/fault_injector.h"

#include <algorithm>
#include <vector>

namespace ppn {

void injectFault(Engine& engine, const FaultPlan& plan, Rng& rng) {
  const std::uint32_t n = engine.numMobile();
  // Contract: clamp to the population; corruptAgents == 0 is a no-op.
  const std::uint32_t toCorrupt = std::min(plan.corruptAgents, n);
  // Choose distinct victims by partial Fisher-Yates over agent ids.
  std::vector<AgentId> agents(n);
  for (AgentId i = 0; i < n; ++i) agents[i] = i;
  for (std::uint32_t i = 0; i < toCorrupt; ++i) {
    const auto j =
        static_cast<std::uint32_t>(i + rng.below(n - i));
    std::swap(agents[i], agents[j]);
    const auto s = static_cast<StateId>(
        rng.below(engine.protocol().numMobileStates()));
    engine.corruptMobile(agents[i], s);
  }
  // Contract: corruptLeader is silently ignored for leaderless protocols and
  // for leaders whose state space is not enumerable.
  if (plan.corruptLeader && engine.protocol().hasLeader()) {
    const auto all = engine.protocol().allLeaderStates();
    if (!all.empty()) {
      engine.corruptLeader(all[rng.below(all.size())]);
    }
  }
}

RecoveryOutcome measureRecovery(Engine& engine, Scheduler& sched,
                                const FaultPlan& plan, const RunLimits& limits,
                                Rng& rng) {
  RecoveryOutcome out;
  const RunOutcome before = runUntilSilent(engine, sched, limits);
  out.initiallyConverged = before.silent;
  if (!before.silent) return out;

  injectFault(engine, plan, rng);
  const std::uint64_t faultAt = engine.totalInteractions();
  const RunOutcome after = runUntilSilent(engine, sched, limits);
  out.recovered = after.silent;
  out.recoveredNamed = after.namingSolved;
  if (after.silent) {
    // Corruption marks a change, so lastChangeAt >= faultAt — except for a
    // no-op fault plan (zero agents, no leader), where recovery is free.
    out.recoveryInteractions = engine.lastChangeAt() >= faultAt
                                   ? engine.lastChangeAt() - faultAt
                                   : 0;
  }
  return out;
}

}  // namespace ppn
