// Structure-of-arrays many-replica kernel: K replicas ("lanes") of ONE
// compiled protocol advance in lockstep slices over packed per-lane state.
//
// Layout: the lanes' agent states, tracker histograms, presence bitsets and
// pair counters are stored lane-major in flat arrays (lane L's agents are
// states[L*N .. L*N+N-1], and so on), all lanes sharing the single read-only
// Q x Q transition table of the CompiledProtocol. One interaction is a table
// load plus the O(1) CompiledLaneTracker update on the lane's slice — the
// same arithmetic Engine::stepCompiled performs, on a view into the packed
// arrays instead of per-engine vectors. The per-lane working set is touched
// contiguously and the shared table stays cache-resident across all K lanes,
// which is where the aggregate throughput over K independent Engines comes
// from.
//
// Determinism contract (enforced by tests/sim/soa_kernel_test.cpp): each lane
// owns its private Scheduler stream and is stepped through exactly the
// runUntilSilent state machine — initial silence poll, checkInterval-sized
// bursts, one silence poll per burst, cancel poll per burst, wall-clock
// watchdog — so for every lane count the RunOutcomes, final configurations
// and per-runId observer event sequences are bit-identical to K independent
// runUntilSilent/runBurst calls (wall-clock fields excepted). Lanes that
// converge or exhaust their budget RETIRE: they are dropped from the active
// set and cost nothing while the remaining lanes keep running.
#pragma once

#include <memory>
#include <vector>

#include "core/compiled.h"
#include "sim/runner.h"

namespace ppn {

/// One lane of a kernel invocation: where the replica starts, the scheduler
/// stream it consumes (owned; advanced exactly as runUntilSilent would), and
/// the runId labeling its observer events.
struct LaneInput {
  Configuration start;
  std::unique_ptr<Scheduler> sched;
  std::uint64_t runId = 0;
};

/// Runs every lane to completion (silence, interaction budget, watchdog or
/// cancellation) under `limits`, interleaving the active lanes in
/// checkInterval-sized slices. All lanes must share the same numMobile and
/// match the protocol's leader presence (std::invalid_argument otherwise;
/// per-state validation mirrors Engine's std::logic_error).
///
/// `observer` receives the same per-lane event sequences runUntilSilent
/// emits, interleaved across lanes; `cancel` is polled once per lane slice.
/// Outcomes are returned in lane order. Exception safety mirrors
/// RunEndPairGuard: if a lane throws, every started-but-unfinished lane gets
/// a synthetic run_end before the exception leaves the kernel.
std::vector<RunOutcome> runLanesUntilSilent(
    const Protocol& proto, const CompiledProtocol& compiled,
    std::vector<LaneInput>& lanes, const RunLimits& limits,
    const CancelToken* cancel = nullptr, RunObserver* observer = nullptr);

}  // namespace ppn
