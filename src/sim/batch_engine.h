// Async batch "naming service" front end over the SoA many-lane kernel.
//
// A BatchEngine owns one worker pool and ONE work queue. Clients submit whole
// batches (a BatchSpec, exactly as runBatch takes) or explicit fixed-start
// lane plans; the engine splits each job into lane-block tasks, queues them
// FIFO, and the workers drain the queue through runLanesUntilSilent — so any
// number of concurrent jobs saturates all cores from a single queue, and a
// converged lane retires without stalling its block. Completed RunOutcomes
// can be streamed as JSONL lines, emitted strictly in run order so the stream
// bytes are deterministic no matter how blocks interleave.
//
// Determinism contract: per-run inputs are derived sequentially at submit()
// time through util/seed.h — the SAME derivation runBatch performs — and each
// run only ever consumes its own pre-split generator and scheduler stream.
// BatchEngine::submit(spec)->wait() therefore returns a BatchResult (and
// per-run outcomes, and per-runId observer event sequences) bit-identical to
// runBatch(proto, spec), for every pool size and lane-block size
// (tests/sim/batch_engine_test.cpp enforces this differentially).
//
// RunObserver/metrics wiring is unchanged from the scalar drivers: the
// spec's observer receives the usual per-run events plus batch_progress, from
// worker threads (observers must be thread-safe, as with runBatch
// threads > 1). Jobs needing a FlightRecorder, or protocols outside the
// compiled envelope, degrade per-lane to the scalar runUntilSilent path with
// identical outcomes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/runner.h"
#include "sim/soa_kernel.h"

namespace ppn {

struct BatchEngineOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::uint32_t threads = 0;
  /// Lanes per queued task: the scheduling granule. Smaller blocks spread one
  /// job over more cores; larger blocks amortize kernel setup. Never affects
  /// results, only scheduling.
  std::uint32_t lanesPerTask = 256;
};

/// Receives one completed run as a JSONL line (no trailing newline), invoked
/// in ascending runId order under the job's lock — the callback must not
/// re-enter the engine.
using JsonlLineSink = std::function<void(const std::string&)>;

/// One fixed-start run of a lane job: exact_vs_simulated-style rows where
/// every run starts from the SAME configuration and only the scheduler
/// stream varies.
struct LanePlan {
  Configuration start;
  std::uint64_t schedSeed = 0;
  std::uint64_t runId = 0;
};

/// Job-wide settings for submitLanes (submit(BatchSpec) derives these from
/// the spec).
struct LaneJobSpec {
  SchedulerKind sched = SchedulerKind::kRandom;
  RunLimits limits;
  RunObserver* observer = nullptr;
  FlightRecorder* recorder = nullptr;
  bool compiled = true;
};

/// Renders one completed run as the engine's JSONL stream line.
std::string runOutcomeJsonl(const RunOutcome& out, std::uint64_t runId);

class BatchEngine {
 public:
  /// Handle to a submitted batch. Results become available once every one of
  /// the job's lane blocks has drained from the queue.
  class Job {
   public:
    /// Blocks until the job completes; aggregates exactly as runBatch does
    /// and rethrows the job's first exception (if any) with its message
    /// intact. Safe to call repeatedly.
    BatchResult wait();

    bool done() const;

    /// Per-run outcomes in run order; valid after wait() returns.
    const std::vector<RunOutcome>& outcomes() const { return outcomes_; }

   private:
    friend class BatchEngine;

    const Protocol* proto = nullptr;
    std::vector<LanePlan> plans;
    LaneJobSpec spec;
    JsonlLineSink sink;
    std::shared_ptr<CompiledProtocol> compiled;  ///< shared by all blocks
    std::uint32_t numMobile_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<RunOutcome> outcomes_;
    std::vector<bool> runDone_;
    std::size_t nextEmit_ = 0;
    std::size_t pendingTasks_ = 0;
    bool finished_ = false;
    CancelToken cancel_{false};
    std::exception_ptr error_;
    std::uint64_t errorRun_ = ~std::uint64_t{0};
    std::uint32_t progressCompleted_ = 0;
    std::uint32_t progressDegraded_ = 0;
    std::uint32_t progressRetired_ = 0;  ///< completed lanes that went silent
  };

  explicit BatchEngine(BatchEngineOptions options = {});

  /// Drains every queued task, then joins the workers. Prefer drain()/wait()
  /// for explicit shutdown points.
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  std::uint32_t threads() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Queues spec.runs runs of `proto` (which must outlive the job). Per-run
  /// inputs (start configuration, scheduler seed, runId) are derived here,
  /// sequentially — a protocol whose arbitraryConfiguration throws does so
  /// from this call, not from a worker. `sink`, when set, receives every
  /// completed run as a JSONL line in run order.
  std::shared_ptr<Job> submit(const Protocol& proto, const BatchSpec& spec,
                              JsonlLineSink sink = nullptr);

  /// Queues explicit pre-derived lane plans (fixed starts, caller-drawn
  /// scheduler seeds). All plans must share one population size.
  std::shared_ptr<Job> submitLanes(const Protocol& proto,
                                   std::vector<LanePlan> plans,
                                   const LaneJobSpec& spec,
                                   JsonlLineSink sink = nullptr);

  /// Drop-in replacement for parallelRunIndexed running on THIS pool instead
  /// of ad-hoc threads: fn(index, cancel) for every index in [0, count),
  /// exception of the lowest index rethrown once, remaining indices skipped
  /// after a throw. Blocks the caller until done. Must not be called from a
  /// worker task (the caller would occupy the slot its work needs).
  void parallelFor(std::uint32_t count,
                   const std::function<void(std::uint32_t, CancelToken&)>& fn);

  /// Blocks until every job submitted so far has completed.
  void drain();

 private:
  void workerLoop();
  void enqueue(std::function<void()> task);
  void runBlock(const std::shared_ptr<Job>& job, std::uint32_t lo,
                std::uint32_t hi);
  void finishBlock(const std::shared_ptr<Job>& job, std::uint32_t lo,
                   std::uint32_t hi, std::vector<RunOutcome> block);

  BatchEngineOptions options_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable queueCv_;
  std::condition_variable idleCv_;
  std::deque<std::function<void()>> queue_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
};

}  // namespace ppn
