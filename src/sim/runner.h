// Simulation driver: runs a protocol under a scheduler until the
// configuration is silent (terminal), collecting convergence metrics.
//
// Convergence time is reported exactly: `Engine::lastChangeAt()` records the
// interaction index of the most recent configuration change, so once silence
// is observed (silence is permanent for deterministic protocols) the
// convergence time does not depend on how often silence was polled.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/engine.h"
#include "sched/scheduler.h"
#include "stats/summary.h"

namespace ppn {

struct RunLimits {
  /// Abort the run (converged = false) after this many interactions.
  std::uint64_t maxInteractions = 10'000'000;
  /// Poll silence every this many interactions. Does not affect reported
  /// convergence times, only detection overhead.
  std::uint64_t checkInterval = 64;
};

struct RunOutcome {
  bool silent = false;        ///< reached a terminal configuration in time
  bool namingSolved = false;  ///< silent with distinct valid names
  /// Interaction count at the last configuration change; the exact
  /// convergence time when silent. Equals the step budget spent when not.
  std::uint64_t convergenceInteractions = 0;
  std::uint64_t totalInteractions = 0;
  std::uint64_t nonNullInteractions = 0;
  std::uint32_t numMobile = 0;
  Configuration finalConfig;

  /// Parallel time in the population-protocol sense: interactions / N.
  double parallelTime() const {
    return numMobile == 0
               ? 0.0
               : static_cast<double>(convergenceInteractions) / numMobile;
  }
};

/// Steps `engine` with interactions from `sched` until silent or the budget
/// runs out.
RunOutcome runUntilSilent(Engine& engine, Scheduler& sched,
                          const RunLimits& limits);

/// Scheduler kinds selectable from CLI flags / experiment configs.
enum class SchedulerKind { kRandom, kSkewed, kRoundRobin, kTournament };

/// Parses "random" | "skewed" | "round-robin" | "tournament"; throws
/// std::invalid_argument otherwise.
SchedulerKind parseSchedulerKind(const std::string& s);
std::string schedulerKindName(SchedulerKind kind);

/// Factory. `skew` controls SkewedRandomScheduler: participant i gets weight
/// 1 + skew * i / (M-1) (ignored by the other kinds).
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind,
                                         std::uint32_t numParticipants,
                                         std::uint64_t seed, double skew = 3.0);

/// How mobile agents start a run.
enum class InitKind {
  kUniform,    ///< the protocol's declared uniform initialization
  kArbitrary,  ///< fresh uniform-random states each run (self-stabilization)
};

struct BatchSpec {
  std::uint32_t numMobile = 0;
  InitKind init = InitKind::kArbitrary;
  SchedulerKind sched = SchedulerKind::kRandom;
  std::uint32_t runs = 32;
  std::uint64_t seed = 1;
  RunLimits limits;
  /// Worker threads. Per-run seeds and starting configurations are derived
  /// sequentially before any run executes, so results are bit-identical for
  /// every thread count. 0 = std::thread::hardware_concurrency().
  std::uint32_t threads = 1;
};

struct BatchResult {
  Summary convergenceInteractions;  ///< over converged runs only
  Summary parallelTime;
  std::uint32_t converged = 0;  ///< runs that reached silence
  std::uint32_t named = 0;      ///< runs that reached silence with naming
  std::uint32_t runs = 0;
};

/// Runs `spec.runs` independent runs of `proto`, each with a fresh initial
/// configuration and scheduler stream derived from `spec.seed`.
BatchResult runBatch(const Protocol& proto, const BatchSpec& spec);

}  // namespace ppn
