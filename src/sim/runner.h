// Simulation driver: runs a protocol under a scheduler until the
// configuration is silent (terminal), collecting convergence metrics.
//
// Convergence time is reported exactly: `Engine::lastChangeAt()` records the
// interaction index of the most recent configuration change, so once silence
// is observed (silence is permanent for deterministic protocols) the
// convergence time does not depend on how often silence was polled.
//
// Hot path: runUntilSilent steps the engine through Engine::runBurst, so an
// engine with a CompiledProtocol attached (runBatch attaches one per batch,
// see BatchSpec::compiled) runs the virtual-free table kernel with O(1)
// incremental silence detection; an unadorned engine runs the interpreted
// reference path. Both produce bit-identical RunOutcomes and observer event
// streams for the same seed.
//
// Batches are hardened for campaign-scale use (see src/faults/):
//  * worker threads never leak exceptions (a throwing run cancels the rest of
//    the batch cooperatively and the first exception is rethrown on join);
//  * an optional wall-clock watchdog aborts hung runs, producing a *partial*
//    BatchResult flagged `degraded` instead of blocking forever;
//  * every per-run input (start configuration, scheduler seed) is derived
//    sequentially before execution, so results are bit-identical for every
//    thread count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/engine.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "stats/summary.h"

namespace ppn {

struct RunLimits {
  /// Abort the run (converged = false) after this many interactions.
  std::uint64_t maxInteractions = 10'000'000;
  /// Poll silence every this many interactions. Does not affect reported
  /// convergence times, only detection overhead.
  std::uint64_t checkInterval = 64;
  /// Wall-clock watchdog: abort the run (silent = false, timedOut = true)
  /// once this many milliseconds have elapsed. 0 = unlimited, the default,
  /// so pre-existing benches and tests are byte-for-byte unaffected.
  std::uint64_t maxWallMillis = 0;
};

/// Cooperative cancellation token shared by the workers of a batch: a run
/// polls it at every silence check and winds down promptly once set.
using CancelToken = std::atomic<bool>;

struct RunOutcome {
  bool silent = false;        ///< reached a terminal configuration in time
  bool namingSolved = false;  ///< silent with distinct valid names
  bool timedOut = false;      ///< aborted by the wall-clock watchdog
  bool cancelled = false;     ///< aborted via the CancelToken
  /// Interaction count at the last configuration change; the exact
  /// convergence time when silent. Equals the step budget spent when not.
  std::uint64_t convergenceInteractions = 0;
  std::uint64_t totalInteractions = 0;
  std::uint64_t nonNullInteractions = 0;
  std::uint32_t numMobile = 0;
  Configuration finalConfig;

  /// Parallel time in the population-protocol sense: interactions / N.
  double parallelTime() const {
    return numMobile == 0
               ? 0.0
               : static_cast<double>(convergenceInteractions) / numMobile;
  }
};

/// Snapshots the run's convergence state from the engine's current
/// configuration: projected-name occupancy histogram (multiplicities,
/// descending), distinct-name count, and collision count (agents sharing
/// their name). This is the FlightRecorder sampling glue — obs/trace.h holds
/// only plain data and never sees core types.
ConvergenceSample sampleConvergence(const Engine& engine, std::uint64_t runId);

/// RAII companion for observed runs: guarantees that an emitted run_start is
/// paired with a run_end even when the run body THROWS (an exception
/// unwinding through a batch worker previously left the event stream with an
/// unpaired run_start), and dumps the flight recorder before the worker
/// unwinds so the ring's perturbation history is not lost with the run.
/// Construct immediately after emitting run_start; call disarm() once the
/// normal path has emitted its own run_end. A destructor firing while armed
/// emits a synthetic run_end (silent/named/timedOut/cancelled all false) with
/// the engine's current interaction counts.
class RunEndPairGuard {
 public:
  RunEndPairGuard(RunObserver* observer, FlightRecorder* recorder,
                  const Engine& engine, std::uint64_t runId);
  ~RunEndPairGuard();

  RunEndPairGuard(const RunEndPairGuard&) = delete;
  RunEndPairGuard& operator=(const RunEndPairGuard&) = delete;

  void disarm() { armed_ = false; }

 private:
  RunObserver* observer_;
  FlightRecorder* recorder_;
  const Engine& engine_;
  std::uint64_t runId_;
  std::chrono::steady_clock::time_point started_;
  bool armed_ = true;
};

/// Steps `engine` with interactions from `sched` until silent or a budget
/// (interactions or wall clock) runs out. `cancel`, when non-null, is polled
/// once per check interval; a set token aborts the run with cancelled = true.
///
/// `observer`, when non-null, receives run_start/run_end (always paired, even
/// for cancelled or timed-out runs), one silence_check per poll, and
/// watchdog_abort / cancelled at the abort point; `runId` labels the events.
/// A null observer costs one branch per check interval — nothing per step.
///
/// `recorder`, when non-null, receives one convergence sample per recorder
/// stride of interactions (bursts are capped at sample boundaries — this can
/// add silence polls but never changes the outcome) plus a final sample at a
/// watchdog/cancel abort, and is dumped to its configured path when the
/// watchdog fires.
RunOutcome runUntilSilent(Engine& engine, Scheduler& sched,
                          const RunLimits& limits,
                          const CancelToken* cancel = nullptr,
                          RunObserver* observer = nullptr,
                          std::uint64_t runId = 0,
                          FlightRecorder* recorder = nullptr);

/// Runs fn(index, cancel) for every index in [0, count), spread over
/// `threads` workers (0 = hardware concurrency). Exception-safe: a throwing
/// invocation sets the shared cancel token (so in-flight runs wind down
/// cooperatively), remaining indices are skipped, all workers are joined, and
/// the exception belonging to the lowest index is rethrown exactly once.
void parallelRunIndexed(
    std::uint32_t count, std::uint32_t threads,
    const std::function<void(std::uint32_t, CancelToken&)>& fn);

/// Scheduler kinds selectable from CLI flags / experiment configs.
enum class SchedulerKind { kRandom, kSkewed, kRoundRobin, kTournament };

/// Parses "random" | "skewed" | "round-robin" | "tournament"; throws
/// std::invalid_argument otherwise.
SchedulerKind parseSchedulerKind(const std::string& s);
std::string schedulerKindName(SchedulerKind kind);

/// Factory. `skew` controls SkewedRandomScheduler: participant i gets weight
/// 1 + skew * i / (M-1) (ignored by the other kinds).
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind,
                                         std::uint32_t numParticipants,
                                         std::uint64_t seed, double skew = 3.0);

/// How mobile agents start a run.
enum class InitKind {
  kUniform,    ///< the protocol's declared uniform initialization
  kArbitrary,  ///< fresh uniform-random states each run (self-stabilization)
};

struct BatchSpec {
  std::uint32_t numMobile = 0;
  InitKind init = InitKind::kArbitrary;
  SchedulerKind sched = SchedulerKind::kRandom;
  std::uint32_t runs = 32;
  std::uint64_t seed = 1;
  RunLimits limits;
  /// Worker threads. Per-run seeds and starting configurations are derived
  /// sequentially before any run executes, so results are bit-identical for
  /// every thread count. 0 = std::thread::hardware_concurrency().
  std::uint32_t threads = 1;
  /// Telemetry probe (not owned; must be thread-safe when threads != 1).
  /// Null — the default — keeps the batch entirely unobserved: results and
  /// outputs are byte-for-byte what they were before the telemetry layer.
  RunObserver* observer = nullptr;
  /// Added to each run's index to form its event runId, so sweeps chaining
  /// several batches into one observer keep ids unique across the sweep.
  std::uint64_t runIdBase = 0;
  /// Convergence flight recorder shared by every run of the batch (not
  /// owned; thread-safe by construction). Null — the default — records
  /// nothing and keeps the hot loop untouched.
  FlightRecorder* recorder = nullptr;
  /// Use the compiled fast path (core/compiled.h): the protocol's transition
  /// tables are flattened once per batch and shared read-only by all workers,
  /// and each engine maintains the incremental silence tracker. Outcomes are
  /// bit-identical to the interpreted path (enforced by the differential
  /// tests); false forces the interpreted reference path.
  bool compiled = true;
};

struct BatchResult {
  Summary convergenceInteractions;  ///< over converged runs only
  Summary parallelTime;
  std::uint32_t converged = 0;  ///< runs that reached silence
  std::uint32_t named = 0;      ///< runs that reached silence with naming
  std::uint32_t timedOut = 0;   ///< runs aborted by the wall-clock watchdog
  std::uint32_t runs = 0;
  /// True when any run hit the watchdog: the batch completed, but its
  /// statistics cover only the runs that finished — a partial result.
  bool degraded = false;
};

/// Aggregates per-run outcomes into the batch summary. Shared by runBatch
/// and BatchEngine::Job::wait (sim/batch_engine.h) — one aggregation rule, so
/// both front ends report identical statistics for identical outcomes.
BatchResult summarizeBatch(const std::vector<RunOutcome>& outcomes);

/// Runs `spec.runs` independent runs of `proto`, each with a fresh initial
/// configuration and scheduler stream derived from `spec.seed`. A run that
/// throws (e.g. std::logic_error from arbitraryConfiguration on a protocol
/// with no enumerable leader states) cancels the remaining runs and is
/// rethrown with its message intact; runs aborted by the watchdog are
/// reported via `timedOut`/`degraded` rather than blocking the batch.
///
/// This is the scalar reference path (one Engine per run). The vectorized
/// equivalent — same spec, bit-identical outcomes — is
/// BatchEngine::submit(proto, spec) in sim/batch_engine.h.
BatchResult runBatch(const Protocol& proto, const BatchSpec& spec);

}  // namespace ppn
