#include "sim/batch_engine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/compiled.h"
#include "util/json.h"
#include "util/seed.h"

namespace ppn {

std::string runOutcomeJsonl(const RunOutcome& out, std::uint64_t runId) {
  JsonWriter w;
  w.beginObject();
  w.key("event").value("run_outcome");
  w.key("runId").value(runId);
  w.key("silent").value(out.silent);
  w.key("named").value(out.namingSolved);
  w.key("timedOut").value(out.timedOut);
  w.key("cancelled").value(out.cancelled);
  w.key("convergenceInteractions").value(out.convergenceInteractions);
  w.key("totalInteractions").value(out.totalInteractions);
  w.key("nonNullInteractions").value(out.nonNullInteractions);
  w.key("numMobile").value(out.numMobile);
  w.key("parallelTime").value(out.parallelTime());
  w.endObject();
  return w.str();
}

BatchEngine::BatchEngine(BatchEngineOptions options) : options_(options) {
  const std::uint32_t workers =
      options.threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                           : options.threads;
  workers_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

BatchEngine::~BatchEngine() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
    stopping_ = true;
  }
  queueCv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void BatchEngine::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queueCv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++inFlight_;
    }
    task();  // tasks capture their own exceptions; never throws
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --inFlight_;
      if (queue_.empty() && inFlight_ == 0) idleCv_.notify_all();
    }
  }
}

void BatchEngine::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  queueCv_.notify_one();
}

void BatchEngine::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
}

std::shared_ptr<BatchEngine::Job> BatchEngine::submit(const Protocol& proto,
                                                      const BatchSpec& spec,
                                                      JsonlLineSink sink) {
  LaneJobSpec jspec;
  jspec.sched = spec.sched;
  jspec.limits = spec.limits;
  jspec.observer = spec.observer;
  jspec.recorder = spec.recorder;
  jspec.compiled = spec.compiled;

  // The exact runBatch derivation (util/seed.h): run r's start configuration
  // is built from pre-split generator r, then the scheduler seed is that
  // generator's next draw. Doing it here, sequentially, keeps the contract
  // that no outcome depends on pool size or block interleaving — and means a
  // throwing arbitraryConfiguration surfaces from submit() itself.
  std::vector<Rng> runRngs = splitRunRngs(spec.seed, spec.runs);
  std::vector<LanePlan> plans;
  plans.reserve(spec.runs);
  for (std::uint32_t r = 0; r < spec.runs; ++r) {
    Rng runRng = runRngs[r];
    LanePlan plan;
    plan.start = spec.init == InitKind::kUniform
                     ? uniformConfiguration(proto, spec.numMobile)
                     : arbitraryConfiguration(proto, spec.numMobile, runRng);
    plan.schedSeed = runRng.next();
    plan.runId = spec.runIdBase + r;
    plans.push_back(std::move(plan));
  }
  return submitLanes(proto, std::move(plans), jspec, std::move(sink));
}

std::shared_ptr<BatchEngine::Job> BatchEngine::submitLanes(
    const Protocol& proto, std::vector<LanePlan> plans,
    const LaneJobSpec& spec, JsonlLineSink sink) {
  auto job = std::make_shared<Job>();
  job->proto = &proto;
  job->spec = spec;
  job->sink = std::move(sink);
  job->plans = std::move(plans);
  const auto runs = static_cast<std::uint32_t>(job->plans.size());
  job->numMobile_ = runs > 0 ? job->plans[0].start.numMobile() : 0;
  for (const LanePlan& plan : job->plans) {
    if (plan.start.numMobile() != job->numMobile_) {
      throw std::invalid_argument(
          "BatchEngine: lane plans must share one population size");
    }
  }
  job->outcomes_.resize(runs);
  job->runDone_.assign(runs, false);
  if (spec.compiled && CompiledProtocol::compilable(proto)) {
    try {
      job->compiled = std::make_shared<CompiledProtocol>(proto);
    } catch (const std::invalid_argument&) {
      job->compiled.reset();  // outside the envelope: scalar path, same bits
    }
  }
  if (runs == 0) {
    job->finished_ = true;
    return job;
  }
  const std::uint32_t blockSize = std::max(1u, options_.lanesPerTask);
  job->pendingTasks_ = (runs + blockSize - 1) / blockSize;
  for (std::uint32_t lo = 0; lo < runs; lo += blockSize) {
    const std::uint32_t hi = std::min(runs, lo + blockSize);
    enqueue([this, job, lo, hi] { runBlock(job, lo, hi); });
  }
  return job;
}

void BatchEngine::runBlock(const std::shared_ptr<Job>& job, std::uint32_t lo,
                           std::uint32_t hi) {
  std::vector<RunOutcome> block(hi - lo);
  if (!job->cancel_.load(std::memory_order_relaxed)) {
    try {
      // The SoA kernel handles every lane the compiled envelope covers; a
      // flight recorder needs a per-run Engine for its samples, so recorded
      // jobs (and uncompilable protocols) take the scalar per-lane path —
      // identical outcomes either way.
      if (job->compiled != nullptr && job->spec.recorder == nullptr) {
        std::vector<LaneInput> lanes;
        lanes.reserve(hi - lo);
        const std::uint32_t participants =
            job->numMobile_ + (job->proto->hasLeader() ? 1u : 0u);
        for (std::uint32_t r = lo; r < hi; ++r) {
          LaneInput lane;
          lane.start = std::move(job->plans[r].start);
          lane.sched = makeScheduler(job->spec.sched, participants,
                                     job->plans[r].schedSeed);
          lane.runId = job->plans[r].runId;
          lanes.push_back(std::move(lane));
        }
        block = runLanesUntilSilent(*job->proto, *job->compiled, lanes,
                                    job->spec.limits, &job->cancel_,
                                    job->spec.observer);
      } else {
        for (std::uint32_t r = lo; r < hi; ++r) {
          if (job->cancel_.load(std::memory_order_relaxed)) break;
          Engine engine(*job->proto, std::move(job->plans[r].start));
          if (job->compiled != nullptr) {
            engine.attachCompiled(job->compiled.get());
          }
          auto sched = makeScheduler(job->spec.sched, engine.numParticipants(),
                                     job->plans[r].schedSeed);
          engine.attachObserver(job->spec.observer, job->plans[r].runId);
          block[r - lo] = runUntilSilent(engine, *sched, job->spec.limits,
                                         &job->cancel_, job->spec.observer,
                                         job->plans[r].runId,
                                         job->spec.recorder);
        }
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(job->mutex_);
        // Keep the error of the lowest block so the rethrown exception is
        // deterministic regardless of worker interleaving.
        if (lo < job->errorRun_) {
          job->errorRun_ = lo;
          job->error_ = std::current_exception();
        }
      }
      job->cancel_.store(true, std::memory_order_relaxed);
    }
  }
  finishBlock(job, lo, hi, std::move(block));
}

void BatchEngine::finishBlock(const std::shared_ptr<Job>& job, std::uint32_t lo,
                              std::uint32_t hi, std::vector<RunOutcome> block) {
  std::unique_lock<std::mutex> lock(job->mutex_);
  const bool ranCleanly = job->error_ == nullptr || job->errorRun_ > lo;
  for (std::uint32_t r = lo; r < hi; ++r) {
    job->outcomes_[r] = std::move(block[r - lo]);
    job->runDone_[r] = true;
  }
  // Batch progress mirrors runBatch: one event per completed run. Blocks
  // skipped by cancellation or killed by an exception report no progress,
  // like the scalar workers they replace. Lane telemetry rides along:
  // lanesLive counts runs not yet completed (the kernel's remaining
  // occupancy) and lanesRetired the completed runs that reached silence —
  // both derived from outcomes under the job lock, so the enriched stream
  // stays deterministic for any pool size or block interleaving.
  if (job->spec.observer != nullptr && ranCleanly &&
      !job->cancel_.load(std::memory_order_relaxed)) {
    const auto total = static_cast<std::uint32_t>(job->plans.size());
    for (std::uint32_t r = lo; r < hi; ++r) {
      if (job->outcomes_[r].timedOut) ++job->progressDegraded_;
      if (job->outcomes_[r].silent) ++job->progressRetired_;
      ++job->progressCompleted_;
      job->spec.observer->onBatchProgress(BatchProgressEvent{
          job->progressCompleted_, total, job->progressDegraded_,
          total - job->progressCompleted_, job->progressRetired_});
    }
  }
  if (job->sink) {
    while (job->nextEmit_ < job->outcomes_.size() &&
           job->runDone_[job->nextEmit_]) {
      job->sink(runOutcomeJsonl(job->outcomes_[job->nextEmit_],
                                job->plans[job->nextEmit_].runId));
      ++job->nextEmit_;
    }
  }
  if (--job->pendingTasks_ == 0) {
    job->finished_ = true;
    lock.unlock();
    job->cv_.notify_all();
  }
}

BatchResult BatchEngine::Job::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return finished_; });
  if (error_ != nullptr) std::rethrow_exception(error_);
  return summarizeBatch(outcomes_);
}

bool BatchEngine::Job::done() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

void BatchEngine::parallelFor(
    std::uint32_t count,
    const std::function<void(std::uint32_t, CancelToken&)>& fn) {
  if (count == 0) return;
  struct State {
    std::atomic<std::uint32_t> nextIndex{0};
    CancelToken cancel{false};
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t pending = 0;
    std::uint32_t errorIndex = std::numeric_limits<std::uint32_t>::max();
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  const std::uint32_t loops = std::min(threads(), count);
  state->pending = loops;

  // Same index-pulling loop as parallelRunIndexed, running as `loops` queued
  // tasks on this pool instead of ad-hoc threads: one long-lived queue
  // instead of per-call thread churn, and fair FIFO interleaving with any
  // batch jobs in flight. `fn` outlives the tasks because this caller blocks
  // below until all of them retire.
  auto work = [state, count, &fn]() {
    for (;;) {
      const std::uint32_t i =
          state->nextIndex.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      if (state->cancel.load(std::memory_order_relaxed)) break;
      try {
        fn(i, state->cancel);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(state->mutex);
          if (i < state->errorIndex) {
            state->errorIndex = i;
            state->error = std::current_exception();
          }
        }
        state->cancel.store(true, std::memory_order_relaxed);
        break;
      }
    }
    {
      const std::lock_guard<std::mutex> lock(state->mutex);
      --state->pending;
    }
    state->cv.notify_all();
  };
  for (std::uint32_t w = 0; w < loops; ++w) enqueue(work);

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&state] { return state->pending == 0; });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

}  // namespace ppn
