#include "sim/soa_kernel.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace ppn {

namespace {

using Clock = std::chrono::steady_clock;

/// The packed per-lane arrays plus the bookkeeping to drive each lane through
/// the runUntilSilent state machine. Everything lane L owns lives at offset
/// L * (its stride) of the flat arrays.
class SoaLanes {
 public:
  SoaLanes(const Protocol& proto, const CompiledProtocol& compiled,
           std::vector<LaneInput>& lanes, const RunLimits& limits,
           const CancelToken* cancel, RunObserver* observer)
      : proto_(proto),
        compiled_(compiled),
        lanes_(lanes),
        limits_(limits),
        cancel_(cancel),
        observer_(observer),
        k_(lanes.size()),
        q_(compiled.numStates()),
        words_(compiled.wordsPerRow()),
        hasLeader_(proto.hasLeader()) {
    if (k_ == 0) return;
    n_ = lanes[0].start.numMobile();
    validateLanes();

    states_.resize(k_ * n_);
    hist_.assign(k_ * q_, 0);
    present_.assign(k_ * words_, 0);
    activePairs_.assign(k_, 0);
    leader_.assign(hasLeader_ ? k_ : 0, LeaderStateId{0});
    leaderIdx_.assign(k_, CompiledProtocol::kNoLeaderIndex);
    steps_.assign(k_, 0);
    nonNull_.assign(k_, 0);
    lastChangeAt_.assign(k_, 0);
    outcomes_.resize(k_);
    finished_.assign(k_, false);
    started_.assign(k_, false);

    const std::uint64_t interval =
        std::max<std::uint64_t>(1, limits_.checkInterval);
    pairBuf_.resize(static_cast<std::size_t>(
        std::min<std::uint64_t>(interval, kBlock)));
  }

  std::vector<RunOutcome> run() {
    if (k_ == 0) return {};
    const bool watch = limits_.maxWallMillis > 0;
    startedAt_ = (watch || observer_ != nullptr) ? Clock::now()
                                                 : Clock::time_point{};
    const Clock::time_point deadline =
        watch ? startedAt_ + std::chrono::milliseconds(limits_.maxWallMillis)
              : Clock::time_point{};

    // Lane init: load the packed arrays, emit run_start and the initial
    // silence poll, and retire lanes that are born silent (or have no
    // interaction budget) before the hot loop ever sees them.
    active_.reserve(k_);
    for (std::size_t lane = 0; lane < k_; ++lane) {
      initLane(lane);
      if (!finished_[lane]) active_.push_back(lane);
    }

    // Lockstep slices: every active lane advances one checkInterval burst per
    // pass, then answers its silence poll; finished lanes are compacted out
    // (stable order) so retired lanes cost nothing.
    const std::uint64_t interval =
        std::max<std::uint64_t>(1, limits_.checkInterval);
    while (!active_.empty()) {
      std::size_t kept = 0;
      for (std::size_t idx = 0; idx < active_.size(); ++idx) {
        const std::size_t lane = active_[idx];
        if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
          outcomes_[lane].cancelled = true;
          if (observer_ != nullptr) {
            observer_->onCancelled(
                CancelledEvent{lanes_[lane].runId, steps_[lane]});
          }
          finishLane(lane);
          continue;
        }
        if (watch && Clock::now() >= deadline) {
          outcomes_[lane].timedOut = true;
          if (observer_ != nullptr) {
            observer_->onWatchdogAbort(WatchdogAbortEvent{
                lanes_[lane].runId, steps_[lane], limits_.maxWallMillis});
          }
          finishLane(lane);
          continue;
        }
        const std::uint64_t burst =
            std::min(interval, limits_.maxInteractions - steps_[lane]);
        runLaneBurst(lane, burst);
        const bool silent = laneSilent(lane);
        if (observer_ != nullptr) {
          observer_->onSilenceCheck(
              SilenceCheckEvent{lanes_[lane].runId, steps_[lane], silent});
        }
        if (silent || steps_[lane] >= limits_.maxInteractions) {
          outcomes_[lane].silent = silent;
          finishLane(lane);
          continue;
        }
        active_[kept++] = lane;
      }
      active_.resize(kept);
    }
    return std::move(outcomes_);
  }

  /// RunEndPairGuard equivalent for the whole kernel: a lane throwing out of
  /// run() must not leave OTHER lanes' run_start events unpaired in the
  /// stream. Called from the kernel entry point's unwind path.
  void emitSyntheticRunEnds() {
    if (observer_ == nullptr) return;
    const double wallMillis = elapsedMillis();
    for (std::size_t lane = 0; lane < k_; ++lane) {
      if (!started_[lane] || finished_[lane]) continue;
      observer_->onRunEnd(RunEndEvent{lanes_[lane].runId, false, false, false,
                                      false, steps_[lane], steps_[lane],
                                      wallMillis});
    }
  }

 private:
  static constexpr std::uint64_t kBlock = 1024;

  void validateLanes() {
    const StateId numMobileStates = proto_.numMobileStates();
    for (const LaneInput& lane : lanes_) {
      if (lane.start.numMobile() != n_) {
        throw std::invalid_argument(
            "runLanesUntilSilent: lanes must share one population size");
      }
      if (lane.sched == nullptr) {
        throw std::invalid_argument(
            "runLanesUntilSilent: lane without a scheduler");
      }
      if (hasLeader_ != lane.start.leader.has_value()) {
        throw std::logic_error(
            "configuration leader presence does not match protocol '" +
            proto_.name() + "'");
      }
      for (const StateId s : lane.start.mobile) {
        if (s >= numMobileStates) {
          throw std::logic_error("configuration state " + std::to_string(s) +
                                 " outside the state space of '" +
                                 proto_.name() + "'");
        }
      }
    }
  }

  std::uint32_t* laneHist(std::size_t lane) { return hist_.data() + lane * q_; }
  std::uint64_t* lanePresent(std::size_t lane) {
    return present_.data() + lane * words_;
  }
  StateId* laneStates(std::size_t lane) { return states_.data() + lane * n_; }

  CompiledLaneTracker laneTracker(std::size_t lane) {
    return CompiledLaneTracker(compiled_, laneHist(lane), lanePresent(lane),
                               activePairs_[lane]);
  }

  void initLane(std::size_t lane) {
    const Configuration& start = lanes_[lane].start;
    std::copy(start.mobile.begin(), start.mobile.end(), laneStates(lane));
    laneTracker(lane).rebuild(start.mobile.begin(), start.mobile.end());
    if (hasLeader_) {
      leader_[lane] = *start.leader;
      if (compiled_.leaderCompiled()) {
        leaderIdx_[lane] = compiled_.leaderIndexOf(*start.leader);
      }
    }
    outcomes_[lane].numMobile = n_;
    if (observer_ != nullptr) {
      observer_->onRunStart(RunStartEvent{lanes_[lane].runId, n_,
                                          n_ + (hasLeader_ ? 1u : 0u)});
    }
    started_[lane] = true;
    const bool silent = laneSilent(lane);
    if (observer_ != nullptr) {
      observer_->onSilenceCheck(
          SilenceCheckEvent{lanes_[lane].runId, 0, silent});
    }
    if (silent || limits_.maxInteractions == 0) {
      outcomes_[lane].silent = silent;
      finishLane(lane);
    }
  }

  /// One checkInterval slice of one lane: scheduler pairs pulled in blocks
  /// (same block discipline as Engine::runBurst, so the stream advances
  /// identically), counters batched, lastChangeAt exact.
  void runLaneBurst(std::size_t lane, std::uint64_t burst) {
    Scheduler& sched = *lanes_[lane].sched;
    std::uint64_t done = 0;
    std::uint64_t nonNull = 0;
    std::uint64_t lastChange = 0;  // 1-based offset of the last change
    while (done < burst) {
      const std::size_t block = static_cast<std::size_t>(
          std::min<std::uint64_t>(pairBuf_.size(), burst - done));
      sched.fill(pairBuf_.data(), block);
      for (std::size_t i = 0; i < block; ++i) {
        if (applyLane(lane, pairBuf_[i])) {
          ++nonNull;
          lastChange = done + i + 1;
        }
      }
      done += block;
    }
    if (nonNull > 0) {
      nonNull_[lane] += nonNull;
      lastChangeAt_[lane] = steps_[lane] + lastChange;
    }
    steps_[lane] += burst;
  }

  /// Engine::stepCompiled on lane-local storage: identical table walks,
  /// identical tracker updates, identical guard throws.
  bool applyLane(std::size_t lane, Interaction interaction) {
    const std::uint32_t leaderPos = n_;
    if (interaction.initiator == interaction.responder) {
      throw std::logic_error("interaction requires two distinct participants");
    }
    if (interaction.initiator > leaderPos ||
        interaction.responder > leaderPos) {
      throw std::logic_error("participant index out of range");
    }
    StateId* states = laneStates(lane);
    const bool initiatorIsLeader = interaction.initiator == leaderPos;
    const bool responderIsLeader = interaction.responder == leaderPos;
    if (initiatorIsLeader || responderIsLeader) {
      if (!hasLeader_) {
        throw std::logic_error("leader interaction scheduled without a leader");
      }
      const AgentId agent =
          initiatorIsLeader ? interaction.responder : interaction.initiator;
      const StateId before = states[agent];
      const LeaderStateId leaderBefore = leader_[lane];
      LeaderResult r;
      if (leaderIdx_[lane] != CompiledProtocol::kNoLeaderIndex) {
        const CompiledProtocol::LeaderEntry& e =
            compiled_.leaderDelta(leaderIdx_[lane], before);
        r = LeaderResult{compiled_.leaderIdAt(e.nextLeader), e.mobile};
        leaderIdx_[lane] = e.nextLeader;
      } else {
        r = proto_.leaderDelta(leaderBefore, before);
        if (compiled_.leaderCompiled()) {
          leaderIdx_[lane] = compiled_.leaderIndexOf(r.leader);
        }
      }
      states[agent] = r.mobile;
      leader_[lane] = r.leader;
      if (r.mobile != before) {
        CompiledLaneTracker tracker = laneTracker(lane);
        tracker.remove(before);
        tracker.add(r.mobile);
      }
      return r.mobile != before || r.leader != leaderBefore;
    }

    const StateId a = states[interaction.initiator];
    const StateId b = states[interaction.responder];
    const MobilePair r = compiled_.mobileDelta(a, b);
    if (r.initiator == a && r.responder == b) return false;
    states[interaction.initiator] = r.initiator;
    states[interaction.responder] = r.responder;
    CompiledLaneTracker tracker = laneTracker(lane);
    tracker.remove(a);
    tracker.remove(b);
    tracker.add(r.initiator);
    tracker.add(r.responder);
    return true;
  }

  bool laneSilent(std::size_t lane) {
    return compiledLaneSilent(
        compiled_, proto_, activePairs_[lane], laneHist(lane),
        hasLeader_ ? std::optional<LeaderStateId>(leader_[lane]) : std::nullopt,
        leaderIdx_[lane]);
  }

  Configuration laneConfig(std::size_t lane) {
    Configuration c;
    const StateId* states = laneStates(lane);
    c.mobile.assign(states, states + n_);
    if (hasLeader_) c.leader = leader_[lane];
    return c;
  }

  double elapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - startedAt_)
        .count();
  }

  /// Seals a lane's outcome from its counters and emits the paired run_end.
  /// The abort flags (cancelled/timedOut) are set by the caller beforehand;
  /// everything else is derived here exactly as runUntilSilent derives it.
  void finishLane(std::size_t lane) {
    RunOutcome& out = outcomes_[lane];
    out.totalInteractions = steps_[lane];
    out.nonNullInteractions = nonNull_[lane];
    out.convergenceInteractions = out.silent ? lastChangeAt_[lane] : steps_[lane];
    out.finalConfig = laneConfig(lane);
    out.namingSolved = out.silent && isNamingSolved(proto_, out.finalConfig);
    finished_[lane] = true;
    if (observer_ != nullptr) {
      observer_->onRunEnd(RunEndEvent{
          lanes_[lane].runId, out.silent, out.namingSolved, out.timedOut,
          out.cancelled, out.convergenceInteractions, out.totalInteractions,
          elapsedMillis()});
    }
  }

  const Protocol& proto_;
  const CompiledProtocol& compiled_;
  std::vector<LaneInput>& lanes_;
  const RunLimits& limits_;
  const CancelToken* cancel_;
  RunObserver* observer_;

  std::size_t k_;
  std::uint32_t n_ = 0;
  StateId q_;
  std::size_t words_;
  bool hasLeader_;
  Clock::time_point startedAt_{};

  // Lane-major packed state (strides: n_, q_, words_, 1).
  std::vector<StateId> states_;
  std::vector<std::uint32_t> hist_;
  std::vector<std::uint64_t> present_;
  std::vector<std::uint64_t> activePairs_;
  std::vector<LeaderStateId> leader_;
  std::vector<std::uint32_t> leaderIdx_;
  std::vector<std::uint64_t> steps_;
  std::vector<std::uint64_t> nonNull_;
  std::vector<std::uint64_t> lastChangeAt_;

  std::vector<RunOutcome> outcomes_;
  std::vector<bool> finished_;
  std::vector<bool> started_;
  std::vector<std::size_t> active_;
  std::vector<Interaction> pairBuf_;
};

}  // namespace

std::vector<RunOutcome> runLanesUntilSilent(const Protocol& proto,
                                            const CompiledProtocol& compiled,
                                            std::vector<LaneInput>& lanes,
                                            const RunLimits& limits,
                                            const CancelToken* cancel,
                                            RunObserver* observer) {
  if (&compiled.protocol() != &proto) {
    throw std::logic_error(
        "runLanesUntilSilent: table was compiled for a different protocol");
  }
  SoaLanes kernel(proto, compiled, lanes, limits, cancel, observer);
  try {
    return kernel.run();
  } catch (...) {
    kernel.emitSyntheticRunEnds();
    throw;
  }
}

}  // namespace ppn
