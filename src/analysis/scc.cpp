#include "analysis/scc.h"

#include <algorithm>
#include <limits>

namespace ppn {

SccDecomposition decomposeScc(const ConfigGraph& graph) {
  const auto n = static_cast<std::uint32_t>(graph.size());
  constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

  SccDecomposition out;
  out.sccOf.assign(n, kUnvisited);

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> onStack(n, false);
  std::vector<std::uint32_t> stack;
  stack.reserve(n);

  // Each frame materializes its node's target list once at push time (one
  // decode per node for compressed graphs, one copy for explicit ones) —
  // Tarjan revisits frame.edgeIdx across iterations, which a streaming
  // decode can't serve cheaply.
  struct Frame {
    std::uint32_t node;
    std::uint32_t edgeIdx;
    std::vector<std::uint32_t> targets;
  };
  const auto targetsOf = [&graph](std::uint32_t v) {
    std::vector<std::uint32_t> targets;
    graph.forEachEdge(v, [&](const Edge& e) { targets.push_back(e.to); });
    return targets;
  };
  std::vector<Frame> callStack;
  std::uint32_t nextIndex = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    callStack.push_back({root, 0, targetsOf(root)});
    index[root] = lowlink[root] = nextIndex++;
    stack.push_back(root);
    onStack[root] = true;

    while (!callStack.empty()) {
      Frame& frame = callStack.back();
      const std::uint32_t v = frame.node;
      if (frame.edgeIdx < frame.targets.size()) {
        const std::uint32_t w = frame.targets[frame.edgeIdx];
        ++frame.edgeIdx;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = nextIndex++;
          stack.push_back(w);
          onStack[w] = true;
          callStack.push_back({w, 0, targetsOf(w)});
        } else if (onStack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        callStack.pop_back();
        if (!callStack.empty()) {
          const std::uint32_t parent = callStack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          const std::uint32_t sccId = out.numSccs++;
          for (;;) {
            const std::uint32_t w = stack.back();
            stack.pop_back();
            onStack[w] = false;
            out.sccOf[w] = sccId;
            if (w == v) break;
          }
        }
      }
    }
  }

  out.members.assign(out.numSccs, {});
  for (std::uint32_t v = 0; v < n; ++v) out.members[out.sccOf[v]].push_back(v);

  out.bottom.assign(out.numSccs, true);
  for (std::uint32_t v = 0; v < n; ++v) {
    graph.forEachEdge(v, [&](const Edge& e) {
      if (e.changed && out.sccOf[e.to] != out.sccOf[v]) {
        out.bottom[out.sccOf[v]] = false;
      }
    });
  }
  return out;
}

}  // namespace ppn
