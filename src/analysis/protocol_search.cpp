#include "analysis/protocol_search.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "analysis/explore_impl.h"
#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/weak_checker.h"
#include "obs/concurrent_observer.h"

namespace ppn {

TabularProtocol::TabularProtocol(StateId q, std::vector<MobilePair> table,
                                 bool symmetric)
    : q_(q), table_(std::move(table)), symmetric_(symmetric) {
  if (table_.size() != static_cast<std::size_t>(q) * q) {
    throw std::invalid_argument("TabularProtocol: table size mismatch");
  }
}

std::string TabularProtocol::name() const {
  return std::string(symmetric_ ? "tabular-symmetric(" : "tabular(") +
         std::to_string(q_) + " states)";
}

namespace {

std::uint64_t ipow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t r = 1;
  for (std::uint64_t i = 0; i < exp; ++i) {
    if (r > UINT64_MAX / base) {
      throw std::overflow_error("protocol space too large to enumerate");
    }
    r *= base;
  }
  return r;
}

}  // namespace

std::uint64_t symmetricProtocolCount(StateId q) {
  // Q choices for each diagonal rule (s,s)->(d,d); Q^2 choices for each
  // unordered off-diagonal pair's rule (the mirrored rule is implied).
  const std::uint64_t offDiagPairs = static_cast<std::uint64_t>(q) * (q - 1) / 2;
  return ipow(q, q) * ipow(static_cast<std::uint64_t>(q) * q, offDiagPairs);
}

TabularProtocol decodeSymmetricProtocol(StateId q, std::uint64_t index) {
  std::vector<MobilePair> table(static_cast<std::size_t>(q) * q);
  // Diagonal: digit base q per state.
  for (StateId s = 0; s < q; ++s) {
    const auto d = static_cast<StateId>(index % q);
    index /= q;
    table[s * q + s] = MobilePair{d, d};
  }
  // Off-diagonal: digit base q^2 per unordered pair (a < b).
  const std::uint64_t base = static_cast<std::uint64_t>(q) * q;
  for (StateId a = 0; a < q; ++a) {
    for (StateId b = a + 1; b < q; ++b) {
      const std::uint64_t digit = index % base;
      index /= base;
      const auto pa = static_cast<StateId>(digit / q);
      const auto pb = static_cast<StateId>(digit % q);
      table[a * q + b] = MobilePair{pa, pb};
      table[b * q + a] = MobilePair{pb, pa};  // symmetry
    }
  }
  return TabularProtocol(q, std::move(table), /*symmetric=*/true);
}

std::uint64_t allProtocolCount(StateId q) {
  const std::uint64_t cells = static_cast<std::uint64_t>(q) * q;
  return ipow(cells, cells);
}

TabularProtocol decodeAnyProtocol(StateId q, std::uint64_t index) {
  const std::uint64_t base = static_cast<std::uint64_t>(q) * q;
  std::vector<MobilePair> table(static_cast<std::size_t>(q) * q);
  for (auto& cell : table) {
    const std::uint64_t digit = index % base;
    index /= base;
    cell = MobilePair{static_cast<StateId>(digit / q),
                      static_cast<StateId>(digit % q)};
  }
  return TabularProtocol(q, std::move(table), /*symmetric=*/false);
}

namespace {

/// Tri-state per-candidate verdict: truncated explorations decide nothing.
enum class CandidateVerdict { kSolves, kFails, kUnknown };

/// Decides one candidate protocol. `nextExploreId` mints the unique id for
/// each inner checker invocation (a plain counter serially, an atomic one in
/// the parallel dispatch).
CandidateVerdict evaluateCandidate(
    StateId q, std::uint32_t n, Fairness fairness, bool symmetricSpace,
    bool selfStabilizing,
    const std::function<Problem(const Protocol&)>& problemFor,
    std::uint64_t idx, const SearchOptions& options,
    ExploreObserver* observer,
    const std::function<std::uint64_t()>& nextExploreId) {
  const TabularProtocol proto = symmetricSpace ? decodeSymmetricProtocol(q, idx)
                                               : decodeAnyProtocol(q, idx);
  const Problem problem = problemFor(proto);

  auto solvesFrom = [&](const std::vector<Configuration>& initials) {
    ExploreOptions exploreOptions;
    exploreOptions.maxNodes = options.maxNodes;
    exploreOptions.maxBytes = options.maxBytes;
    exploreOptions.storage = options.storage;
    exploreOptions.spillBytes = options.spillBytes;
    exploreOptions.spillDir = options.spillDir;
    exploreOptions.observer = observer;
    exploreOptions.exploreId = nextExploreId();
    if (fairness == Fairness::kGlobal) {
      const GlobalVerdict v =
          checkGlobalFairness(proto, problem, initials, exploreOptions);
      if (!v.explored) return CandidateVerdict::kUnknown;
      return v.solves ? CandidateVerdict::kSolves : CandidateVerdict::kFails;
    }
    const WeakVerdict v =
        checkWeakFairness(proto, problem, initials, exploreOptions);
    if (!v.explored) return CandidateVerdict::kUnknown;
    return v.solves ? CandidateVerdict::kSolves : CandidateVerdict::kFails;
  };

  CandidateVerdict verdict = CandidateVerdict::kFails;
  if (selfStabilizing) {
    verdict = solvesFrom(fairness == Fairness::kGlobal
                             ? allCanonicalConfigurations(proto, n)
                             : allConcreteConfigurations(proto, n));
  } else {
    // The designer may pick any single uniform initialization. Any
    // truncated initialization leaves the candidate unknown unless a later
    // initialization proves it a solver.
    for (StateId s = 0; s < q && verdict != CandidateVerdict::kSolves; ++s) {
      Configuration c;
      c.mobile.assign(n, s);
      const CandidateVerdict v = solvesFrom({c});
      if (v == CandidateVerdict::kSolves ||
          (v == CandidateVerdict::kUnknown &&
           verdict == CandidateVerdict::kFails)) {
        verdict = v;
      }
    }
  }
  return verdict;
}

}  // namespace

SearchOutcome searchProblem(
    StateId q, std::uint32_t n, Fairness fairness, bool symmetricSpace,
    bool selfStabilizing,
    const std::function<Problem(const Protocol&)>& problemFor,
    const SearchOptions& options) {
  const std::uint64_t total =
      symmetricSpace ? symmetricProtocolCount(q) : allProtocolCount(q);
  const std::uint32_t requested = detail::resolveThreads(options.threads);
  const std::uint32_t K = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(requested, std::max<std::uint64_t>(total, 1)));
  const std::uint64_t searchId = options.searchId;

  if (K <= 1) {
    // Serial reference path — event-for-event identical to the historical
    // single-threaded loop.
    ExploreObserver* observer = options.observer;
    const PhaseScope searchPhase(observer, searchId, "search");
    const auto start = std::chrono::steady_clock::now();
    // Unique id per inner exploration: high half names the search, low half
    // counts checker invocations (see the header contract).
    std::uint64_t exploreSeq = 0;

    auto emitProgress = [&](const SearchOutcome& o, bool done) {
      if (observer == nullptr) return;
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      SearchProgressEvent e;
      e.searchId = searchId;
      e.examined = o.examined;
      e.total = total;
      e.solvers = o.solvers;
      e.unknown = o.unknown;
      e.candidatesPerSec =
          elapsed > 0.0 ? static_cast<double>(o.examined) / elapsed : 0.0;
      e.elapsedMillis = elapsed * 1e3;
      e.done = done;
      observer->onSearchProgress(e);
    };

    SearchOutcome outcome;
    for (std::uint64_t idx = 0; idx < total; ++idx) {
      ++outcome.examined;
      const CandidateVerdict verdict = evaluateCandidate(
          q, n, fairness, symmetricSpace, selfStabilizing, problemFor, idx,
          options, observer,
          [&] { return (searchId << 32) | ++exploreSeq; });
      if (verdict == CandidateVerdict::kSolves) {
        ++outcome.solvers;
        if (outcome.solverIndices.size() < 8) {
          outcome.solverIndices.push_back(idx);
        }
      } else if (verdict == CandidateVerdict::kUnknown) {
        ++outcome.unknown;
      }
      if (outcome.examined % kSearchProgressStride == 0) {
        emitProgress(outcome, false);
      }
    }
    emitProgress(outcome, true);
    return outcome;
  }

  // Parallel dispatch: workers claim candidate indices from an atomic
  // cursor, results are aggregated under one mutex, and solverIndices is the
  // sorted-ascending prefix of ALL solver indices — the first witnesses by
  // canonical candidate index, independent of completion order.
  SerializedExploreObserver serializedStorage(options.observer);
  ExploreObserver* observer =
      options.observer == nullptr ? nullptr : &serializedStorage;
  const PhaseScope searchPhase(observer, searchId, "search");
  const auto start = std::chrono::steady_clock::now();

  std::atomic<std::uint64_t> exploreSeq{0};
  std::atomic<std::uint64_t> cursor{0};
  std::mutex mu;  // guards outcome, allSolvers, progress emission, firstError
  SearchOutcome outcome;
  std::vector<std::uint64_t> allSolvers;
  std::exception_ptr firstError;

  auto emitProgressLocked = [&](bool done) {
    if (observer == nullptr) return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    SearchProgressEvent e;
    e.searchId = searchId;
    e.examined = outcome.examined;
    e.total = total;
    e.solvers = outcome.solvers;
    e.unknown = outcome.unknown;
    e.candidatesPerSec =
        elapsed > 0.0 ? static_cast<double>(outcome.examined) / elapsed : 0.0;
    e.elapsedMillis = elapsed * 1e3;
    e.done = done;
    observer->onSearchProgress(e);
  };

  auto worker = [&]() {
    try {
      for (;;) {
        const std::uint64_t idx =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (idx >= total) break;
        const CandidateVerdict verdict = evaluateCandidate(
            q, n, fairness, symmetricSpace, selfStabilizing, problemFor, idx,
            options, observer, [&] {
              return (searchId << 32) |
                     (exploreSeq.fetch_add(1, std::memory_order_relaxed) + 1);
            });
        const std::lock_guard<std::mutex> lock(mu);
        ++outcome.examined;
        if (verdict == CandidateVerdict::kSolves) {
          ++outcome.solvers;
          allSolvers.push_back(idx);
        } else if (verdict == CandidateVerdict::kUnknown) {
          ++outcome.unknown;
        }
        if (outcome.examined % kSearchProgressStride == 0) {
          emitProgressLocked(false);
        }
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu);
      if (firstError == nullptr) firstError = std::current_exception();
      cursor.store(total, std::memory_order_relaxed);  // drain remaining work
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(K - 1);
  for (std::uint32_t w = 1; w < K; ++w) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  if (firstError != nullptr) std::rethrow_exception(firstError);

  std::sort(allSolvers.begin(), allSolvers.end());
  if (allSolvers.size() > 8) allSolvers.resize(8);
  outcome.solverIndices = std::move(allSolvers);
  emitProgressLocked(true);
  return outcome;
}

SearchOutcome searchProblem(
    StateId q, std::uint32_t n, Fairness fairness, bool symmetricSpace,
    bool selfStabilizing,
    const std::function<Problem(const Protocol&)>& problemFor,
    ExploreObserver* observer, std::uint64_t searchId) {
  SearchOptions options;
  options.observer = observer;
  options.searchId = searchId;
  return searchProblem(q, n, fairness, symmetricSpace, selfStabilizing,
                       problemFor, options);
}

SearchOutcome searchUniformNaming(StateId q, std::uint32_t n, Fairness fairness,
                                  bool symmetricSpace,
                                  ExploreObserver* observer,
                                  std::uint64_t searchId) {
  return searchProblem(q, n, fairness, symmetricSpace,
                       /*selfStabilizing=*/false,
                       [](const Protocol& p) { return namingProblem(p); },
                       observer, searchId);
}

SearchOutcome searchUniformNaming(StateId q, std::uint32_t n, Fairness fairness,
                                  bool symmetricSpace,
                                  const SearchOptions& options) {
  return searchProblem(q, n, fairness, symmetricSpace,
                       /*selfStabilizing=*/false,
                       [](const Protocol& p) { return namingProblem(p); },
                       options);
}

SearchOutcome searchSelfStabilizingNaming(StateId q, std::uint32_t n,
                                          Fairness fairness,
                                          bool symmetricSpace,
                                          ExploreObserver* observer,
                                          std::uint64_t searchId) {
  return searchProblem(q, n, fairness, symmetricSpace,
                       /*selfStabilizing=*/true,
                       [](const Protocol& p) { return namingProblem(p); },
                       observer, searchId);
}

SearchOutcome searchSelfStabilizingNaming(StateId q, std::uint32_t n,
                                          Fairness fairness,
                                          bool symmetricSpace,
                                          const SearchOptions& options) {
  return searchProblem(q, n, fairness, symmetricSpace,
                       /*selfStabilizing=*/true,
                       [](const Protocol& p) { return namingProblem(p); },
                       options);
}

}  // namespace ppn
