// Level-synchronous parallel BFS over the configuration graph, bit-identical
// to the serial explorers for any thread count (DESIGN.md, decision 14).
//
// Why bit-identity is achievable at all: the serial loop pops a FIFO deque
// and assigns ids at intern time, so its expansion order IS ascending node-id
// order and the global candidate stream is ordered by (expanding position p,
// per-node enumeration index k). Any scheme that reconstitutes that stream
// order at a level barrier reproduces the exact serial intern order — node
// ids, edge targets, edge order, dedup counts and the truncation cut all
// follow. Concretely, each level runs four phases:
//
//   1. expand (parallel)    — workers take static contiguous blocks of the
//      level, enumerate successors via the shared enumerators, pack each one
//      (packed_config.h) and bucket its (p, k) index by hash shard. Static
//      blocks keep every shard's bucket lists concatenable in stream order.
//   2. dedup (parallel)     — shards are claimed atomically; each of the 64
//      shards is owned by exactly one worker per level (no locks), which
//      replays its bucket entries in stream order against the shard's map.
//      First-ever occurrences get a placeholder slot; every candidate
//      records (shard, slot) for later id resolution.
//   3. merge (serial)       — new entries from all shards are ordered by
//      stream position and assigned ids g.size(), g.size()+1, ... — the
//      serial intern order. The serial per-pop maxNodes check is replayed
//      exactly: the cut position p* is the first level position at which the
//      simulated node count exceeds the cap; entries born at p >= p* are
//      discarded (a suffix of every shard's pending list) and the remaining
//      frontier is reconstructed as the serial deque would have held it.
//   4. edges (parallel)     — adjacency lists of the expanded (p < p*) level
//      nodes are filled independently (distinct vectors, race-free),
//      resolving targets through the now-final shard slots.
//
// Observer events are emitted only by the merge thread, so one exploration's
// progress stream stays globally monotone even at threads > 1.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/explore_impl.h"
#include "analysis/packed_config.h"

namespace ppn::detail {

namespace {

constexpr std::uint32_t kShards = 64;
constexpr std::uint32_t kUnassigned = 0xffffffffu;

/// Reusable fork-join pool: run(job) executes job(w) for w in [0, threads)
/// — worker 0 is the calling thread — and returns when all invocations
/// finished, rethrowing the first worker exception. The mutex/condvar
/// handshake at each barrier gives the happens-before edges the phase
/// structure relies on.
class LevelPool {
 public:
  explicit LevelPool(std::uint32_t threads) : threads_(threads) {
    for (std::uint32_t w = 1; w < threads_; ++w) {
      workers_.emplace_back([this, w] { workerLoop(w); });
    }
  }

  ~LevelPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void run(const std::function<void(std::uint32_t)>& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      pending_ = threads_ - 1;
      ++generation_;
    }
    cv_.notify_all();
    runGuarded(job, 0);
    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (error_ != nullptr) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void runGuarded(const std::function<void(std::uint32_t)>& job,
                  std::uint32_t w) {
    try {
      job(w);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
  }

  void workerLoop(std::uint32_t w) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::uint32_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        seen = generation_;
        if (stop_) return;
        job = job_;
      }
      if (job != nullptr) runGuarded(*job, w);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) doneCv_.notify_all();
      }
    }
  }

  std::uint32_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable doneCv_;
  const std::function<void(std::uint32_t)>* job_ = nullptr;
  std::uint32_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

/// One enumerated successor, between expansion and edge construction.
struct Cand {
  PackedConfig key;           // moved into the shard map on first occurrence
  std::uint32_t slotRef = 0;  // index into its shard's slot table (phase 2)
  std::uint8_t shard = 0;
  bool dedupHit = false;  // key was already interned (matches serial counts)
  /// Compressed mode only: slotRef already IS the final node id (the target
  /// was found in a prior-level fingerprint table or a spill run, so no slot
  /// indirection is needed).
  bool finalId = false;
  EdgeMeta meta;
};

/// (level position, candidate index) — the global stream order key.
struct PK {
  std::uint32_t p;
  std::uint32_t k;
};

/// A configuration first seen this level, pending id assignment.
struct NewEntry {
  std::uint64_t pos;  // (p << 32) | k of the first occurrence
  std::uint32_t slotRef;
  std::uint8_t shard;
  const PackedConfig* key;  // stable: points into the shard map node
};

struct Shard {
  std::unordered_map<PackedConfig, std::uint32_t, PackedConfigHash> map;
  std::vector<std::uint32_t> slots;  // slotRef -> final node id
  std::vector<NewEntry> pending;     // this level's insertions, stream order
  /// Per-entry dedup/codec charges this shard accrued (DESIGN decision 18).
  /// Touched only by the shard's phase-2 owner and the merge thread; folded
  /// in fixed shard order into the tracker after every merge.
  MemoryLedger ledger;
};

/// Per-shard state of the compressed-mode dedup (phase 2). `map` holds only
/// THIS level's first occurrences (cross-level dedup goes through the
/// fingerprint table), `slots` maps this level's slotRefs to their
/// provisionally assigned ids, and `fpTable` is the shard's slice of the
/// two-tier RAM table (ids from completed levels, minus spilled ranges).
struct CShard {
  std::unordered_map<PackedConfig, std::uint32_t, PackedConfigHash> map;
  std::vector<std::uint32_t> slots;
  std::vector<NewEntry> pending;
  FpTable fpTable;
};

/// Compressed-storage variant of the level-synchronous engine. The phase
/// structure is identical to the explicit engine below; what changes is the
/// landing representation (delta stores instead of vectors), the dedup tier
/// (fingerprint tables + spill runs instead of one map per shard) and the
/// phase-3 replay, which additionally advances a COPY of the spill policy so
/// flush decisions — pure functions of the interned count — happen at the
/// exact serial pop positions. Flushes decided mid-replay are materialized
/// only after the level commits (on the truncation path the files would be
/// unobservable, so only the modeled state is taken).
ConfigGraph exploreParallelCompressed(const Protocol& proto,
                                      const std::vector<Configuration>& initials,
                                      const ExploreOptions& options,
                                      bool canonical) {
  ConfigGraph g;
  const std::uint32_t n = initials.front().numMobile();
  const std::uint32_t m = n + (proto.hasLeader() ? 1u : 0u);
  g.numParticipants = m;
  const std::uint32_t K = resolveThreads(options.threads);
  const PackedCodec codec(canonical ? PackedCodec::Form::kCanonical
                                    : PackedCodec::Form::kConcrete,
                          proto, n);
  const PhaseScope phase(options.observer, options.exploreId, "explore");
  g.packed.init(codec, /*concrete=*/!canonical);
  ConfigStore& store = g.packed.configStore();
  EdgeStreamStore& estore = g.packed.edgeStore();
  ExploreTracker tracker(options.observer, options.exploreId, g, codec, n);

  std::vector<CShard> shards(kShards);
  SpillPolicy policy(options.spillBytes);
  SpillRunSet runs(options.spillDir);
  const std::uint32_t width = codec.packedBytes();

  const auto syncComponents = [&] {
    tracker.setCompressedComponents(store.modeledBytes(), estore.modeledBytes(),
                                    policy.dedupModelBytes(store.count()));
    tracker.setSpillState(policy.spillDiskBytes(), policy.runCount());
  };
  // Drains the flushed id range out of every shard's table slice into one
  // sorted run — the committed form of one SpillPolicy::Action.
  const auto materializeFlush = [&](const SpillPolicy::Action& action) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> drained;
    for (CShard& sh : shards) {
      sh.fpTable.drainRange(action.from, action.to, drained);
    }
    std::sort(drained.begin(), drained.end());
    std::vector<SpillEntry> entries;
    entries.reserve(drained.size());
    for (const auto& [fp, id] : drained) entries.push_back(SpillEntry{fp, id});
    runs.writeRun(entries);
    if (action.compact) runs.compact();
  };
  // Merge-thread section timing (wall-clock, exempt from bit-identity).
  const auto timed = [&](ExploreTracker::Section section, auto&& fn) {
    if (!tracker.timing()) {
      fn();
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    tracker.addSectionSeconds(
        section, std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  };

  std::vector<std::uint32_t> frontier;
  {
    std::vector<std::uint8_t> verifyBuf(width);
    for (const auto& initial : initials) {
      const Configuration c = canonical ? initial.canonicalized() : initial;
      const PackedConfig key = codec.pack(c);
      CShard& sh = shards[key.hash() % kShards];
      const auto hit = sh.fpTable.find(key.hash(), [&](std::uint32_t id) {
        store.decode(id, verifyBuf.data());
        return std::memcmp(verifyBuf.data(), key.data(), width) == 0;
      });
      if (hit) continue;
      const std::uint32_t id = store.count();
      store.append(key.data());
      sh.fpTable.insert(key.hash(), id);
      frontier.push_back(id);
    }
  }
  syncComponents();

  LevelPool pool(K);
  std::vector<std::vector<Cand>> candBuf;
  std::vector<std::vector<std::uint8_t>> bodyBuf;
  std::vector<std::array<std::vector<PK>, kShards>> buckets(K);
  std::atomic<std::uint32_t> shardCursor{0};

  while (!frontier.empty()) {
    // Level entry replays the serial top-of-pop for p = 0: spill
    // maintenance first (flushing is what lets a tight budget survive),
    // then the cap checks against the synced components.
    if (const auto action = policy.maybeFlush(store.count())) {
      timed(ExploreTracker::Section::kIo, [&] { materializeFlush(*action); });
    }
    syncComponents();
    tracker.checkpoint(frontier.size());
    {
      const bool overNodes = g.size() > options.maxNodes;
      const bool overBytes =
          options.maxBytes != 0 && tracker.totalBytes() > options.maxBytes;
      if (overNodes || overBytes) {
        g.truncated = true;
        g.truncatedByBudget = overBytes && !overNodes;
        tracker.recordTruncation(options.maxNodes, options.maxBytes,
                                 g.truncatedByBudget, frontier);
        break;
      }
    }
    const std::uint32_t L = static_cast<std::uint32_t>(frontier.size());
    if (candBuf.size() < L) candBuf.resize(L);
    if (bodyBuf.size() < L) bodyBuf.resize(L);

    // Phase 1: expand + bucket. Workers decode their contiguous frontier
    // block through a sequential cursor (frontier ids ascend by one).
    timed(ExploreTracker::Section::kExpand, [&] {
      pool.run([&](std::uint32_t w) {
        const std::uint32_t lo =
            static_cast<std::uint32_t>(std::uint64_t{L} * w / K);
        const std::uint32_t hi =
            static_cast<std::uint32_t>(std::uint64_t{L} * (w + 1) / K);
        auto& myBuckets = buckets[w];
        for (auto& b : myBuckets) b.clear();
        ConfigStore::Cursor cursor(store);
        for (std::uint32_t p = lo; p < hi; ++p) {
          auto& cands = candBuf[p];
          cands.clear();
          const Configuration current =
              codec.unpackBytes(cursor.at(frontier[p]));
          auto sink = [&](Configuration&& next, const EdgeMeta& meta) {
            Cand c;
            c.key = codec.pack(next);
            c.shard = static_cast<std::uint8_t>(c.key.hash() % kShards);
            c.meta = meta;
            cands.push_back(std::move(c));
          };
          if (canonical) {
            forEachCanonicalSuccessor(proto, current, n, sink);
          } else {
            forEachConcreteSuccessor(proto, current, m, options.topology, sink);
          }
          for (std::uint32_t k = 0; k < cands.size(); ++k) {
            myBuckets[cands[k].shard].push_back(PK{p, k});
          }
        }
      });
    });

    // Phase 2: per-shard dedup against pending map, fingerprint table and
    // spill runs (three disjoint id sets). Verification decodes the const
    // store; run probes are pread-only — both thread-safe.
    shardCursor.store(0, std::memory_order_relaxed);
    timed(ExploreTracker::Section::kDedup, [&] {
      pool.run([&](std::uint32_t) {
        std::vector<std::uint8_t> verifyBuf(width);
        std::vector<std::uint32_t> runCands;
        const auto matches = [&](std::uint32_t candId, const PackedConfig& key) {
          store.decode(candId, verifyBuf.data());
          return std::memcmp(verifyBuf.data(), key.data(), width) == 0;
        };
        for (;;) {
          const std::uint32_t s =
              shardCursor.fetch_add(1, std::memory_order_relaxed);
          if (s >= kShards) break;
          CShard& sh = shards[s];
          for (std::uint32_t w = 0; w < K; ++w) {
            for (const PK pk : buckets[w][s]) {
              Cand& c = candBuf[pk.p][pk.k];
              if (const auto pit = sh.map.find(c.key); pit != sh.map.end()) {
                c.slotRef = pit->second;
                c.dedupHit = true;
                c.finalId = false;
                continue;
              }
              if (const auto hit = sh.fpTable.find(
                      c.key.hash(),
                      [&](std::uint32_t id) { return matches(id, c.key); })) {
                c.slotRef = *hit;
                c.dedupHit = true;
                c.finalId = true;
                continue;
              }
              if (runs.runCount() > 0) {
                runs.candidates(c.key.hash(), runCands);
                bool found = false;
                for (const std::uint32_t id : runCands) {
                  if (matches(id, c.key)) {
                    c.slotRef = id;
                    c.dedupHit = true;
                    c.finalId = true;
                    found = true;
                    break;
                  }
                }
                if (found) continue;
              }
              const auto slotRef = static_cast<std::uint32_t>(sh.pending.size());
              const auto [it, inserted] = sh.map.try_emplace(std::move(c.key), slotRef);
              sh.pending.push_back(
                  NewEntry{(std::uint64_t{pk.p} << 32) | pk.k, slotRef,
                           static_cast<std::uint8_t>(s), &it->first});
              c.slotRef = slotRef;
              c.dedupHit = false;
              c.finalId = false;
            }
          }
        }
      });
    });

    // Phase 3 (serial): replay the serial per-pop state. Provisional ids are
    // assigned to ALL pending entries up front — every edge of a surviving
    // pop references an entry whose first occurrence precedes the cut, so
    // the surviving prefix of ids is stable under suffix rollback — then the
    // walk prices configs (SizeSim), edge streams (lazily encoded here) and
    // the spill-policy copy at every pop.
    std::uint64_t totalNew = 0;
    for (const CShard& sh : shards) totalNew += sh.pending.size();
    std::vector<std::uint32_t> newFrom(L, 0);
    for (const CShard& sh : shards) {
      for (const NewEntry& e : sh.pending) ++newFrom[e.pos >> 32];
    }
    std::vector<const NewEntry*> order;
    order.reserve(static_cast<std::size_t>(totalNew));
    for (const CShard& sh : shards) {
      for (const NewEntry& e : sh.pending) order.push_back(&e);
    }
    std::sort(order.begin(), order.end(),
              [](const NewEntry* a, const NewEntry* b) { return a->pos < b->pos; });

    const std::uint32_t levelStartNodes = store.count();
    const std::uint64_t levelStartBlob = store.blobBytes();
    const std::uint32_t levelStartStreams = estore.streamCount();
    const std::uint64_t levelStartEdgeBlob = estore.blobBytes();
    for (CShard& sh : shards) sh.slots.resize(sh.pending.size());
    std::vector<std::uint64_t> cumCfg(static_cast<std::size_t>(totalNew) + 1, 0);
    {
      ConfigStore::SizeSim sim = store.sizeSim();
      for (std::size_t i = 0; i < order.size(); ++i) {
        const NewEntry* e = order[i];
        shards[e->shard].slots[e->slotRef] =
            levelStartNodes + static_cast<std::uint32_t>(i);
        cumCfg[i + 1] = cumCfg[i] + sim.append(e->key->data());
      }
    }
    const auto resolveTarget = [&](const Cand& c) {
      return c.finalId ? c.slotRef : shards[c.shard].slots[c.slotRef];
    };

    SpillPolicy replayPolicy = policy;
    std::vector<SpillPolicy::Action> actions;
    std::uint32_t cut = L;
    bool cutByBudget = false;
    std::uint64_t newNodes = 0;
    {
      std::uint64_t edgeBlob = 0;
      for (std::uint32_t p = 0; p < L; ++p) {
        const std::uint64_t k = levelStartNodes + newNodes;
        if (const auto action =
                replayPolicy.maybeFlush(static_cast<std::uint32_t>(k))) {
          actions.push_back(*action);
        }
        const std::uint64_t dedupModel =
            replayPolicy.dedupModelBytes(static_cast<std::uint32_t>(k));
        const std::uint64_t frontierEntries = (L - p) + newNodes;
        const std::uint64_t total =
            ConfigStore::modeledBytesAt(k, levelStartBlob + cumCfg[newNodes]) +
            EdgeStreamStore::modeledBytesAt(levelStartStreams + p,
                                            levelStartEdgeBlob + edgeBlob) +
            dedupModel + frontierEntries * sizeof(std::uint32_t);
        tracker.noteReplayState(total, frontierEntries);
        tracker.noteReplayDedup(dedupModel);
        const bool overNodes = k > options.maxNodes;
        const bool overBytes =
            options.maxBytes != 0 && total > options.maxBytes;
        if (overNodes || overBytes) {
          cut = p;
          cutByBudget = overBytes && !overNodes;
          break;
        }
        EdgeStreamStore::encodeBody(
            bodyBuf[p], frontier[p],
            static_cast<std::uint32_t>(candBuf[p].size()), !canonical,
            [&](std::uint32_t k2) {
              const Cand& c = candBuf[p][k2];
              RawEdge raw;
              raw.to = resolveTarget(c);
              raw.flags = static_cast<std::uint8_t>(
                  (c.meta.changed ? 1 : 0) | (c.meta.changedMobile ? 2 : 0) |
                  (c.meta.changedName ? 4 : 0));
              raw.initiator = c.meta.initiator;
              raw.responder = c.meta.responder;
              return raw;
            });
        edgeBlob += EdgeStreamStore::streamBlobBytes(bodyBuf[p].size());
        newNodes += newFrom[p];
      }
    }
    if (cut < L) {
      // Entries first discovered at or after the cut were never interned
      // serially; they are a suffix of every shard's pending list AND of
      // `order`, so the surviving prefix keeps its provisional ids.
      for (CShard& sh : shards) {
        while (!sh.pending.empty() && (sh.pending.back().pos >> 32) >= cut) {
          sh.map.erase(sh.map.find(*sh.pending.back().key));
          sh.pending.pop_back();
        }
      }
    }

    // Commit the surviving prefix: configs in stream order, then (phase 4,
    // serial by nature — the stores are append-only) the pre-encoded edge
    // streams of the expanded pops.
    std::vector<std::uint32_t> nextFrontier;
    nextFrontier.reserve(static_cast<std::size_t>(newNodes));
    std::uint64_t levelEdges = 0;
    std::uint64_t levelDedup = 0;
    timed(ExploreTracker::Section::kAppend, [&] {
      for (std::size_t i = 0; i < static_cast<std::size_t>(newNodes); ++i) {
        const NewEntry* e = order[i];
        const std::uint32_t id = store.count();
        store.append(e->key->data());
        if (cut == L) shards[e->shard].fpTable.insert(e->key->hash(), id);
        nextFrontier.push_back(id);
      }
      for (std::uint32_t p = 0; p < cut; ++p) {
        estore.appendStream(frontier[p], bodyBuf[p]);
        levelEdges += candBuf[p].size();
        for (const Cand& c : candBuf[p]) {
          if (c.dedupHit) ++levelDedup;
        }
      }
    });
    for (CShard& sh : shards) {
      sh.map.clear();
      sh.pending.clear();
      sh.slots.clear();
    }

    if (cut < L) {
      // Modeled spill state at the cut comes from the replayed policy; the
      // flush files themselves are unobservable past this point and are not
      // written.
      policy = replayPolicy;
      g.truncated = true;
      g.truncatedByBudget = cutByBudget;
      syncComponents();
      std::vector<std::uint32_t> rest(frontier.begin() + cut, frontier.end());
      rest.insert(rest.end(), nextFrontier.begin(), nextFrontier.end());
      tracker.recordLevel(cut, levelEdges, levelDedup, rest.size());
      tracker.checkpoint(rest.size());
      tracker.recordTruncation(options.maxNodes, options.maxBytes, cutByBudget,
                               rest);
      frontier = std::move(rest);
      break;
    }

    // Commit the mid-level flush decisions in replay order, then adopt the
    // replayed policy state.
    if (!actions.empty()) {
      timed(ExploreTracker::Section::kIo, [&] {
        for (const SpillPolicy::Action& action : actions) {
          materializeFlush(action);
        }
      });
    }
    policy = replayPolicy;
    syncComponents();
    tracker.recordLevel(L, levelEdges, levelDedup, nextFrontier.size());
    frontier = std::move(nextFrontier);
  }

  syncComponents();
  tracker.finish(frontier.size());
  return g;
}

}  // namespace

ConfigGraph exploreParallelImpl(const Protocol& proto,
                                const std::vector<Configuration>& initials,
                                const ExploreOptions& options, bool canonical) {
  if (options.storage == GraphStorage::kCompressed) {
    return exploreParallelCompressed(proto, initials, options, canonical);
  }
  ConfigGraph g;
  const std::uint32_t n = initials.front().numMobile();
  const std::uint32_t m = n + (proto.hasLeader() ? 1u : 0u);
  g.numParticipants = m;
  const std::uint32_t K = resolveThreads(options.threads);
  const PackedCodec codec(canonical ? PackedCodec::Form::kCanonical
                                    : PackedCodec::Form::kConcrete,
                          proto, n);

  const PhaseScope phase(options.observer, options.exploreId, "explore");
  ExploreTracker tracker(options.observer, options.exploreId, g, codec, n);
  const std::uint64_t dedupEntry = ExploreTracker::dedupEntryBytes();
  const std::uint64_t codecSpill = tracker.codecSpillBytes();

  std::vector<Shard> shards(kShards);
  // Folds the per-shard ledgers (fixed shard order) into the tracker's
  // node-derived components; bit-identical to the serial per-intern accrual.
  const auto refoldShards = [&] {
    MemoryLedger fold;
    for (const Shard& sh : shards) fold.merge(sh.ledger);
    tracker.applyShardFold(g.configs.size(), fold);
  };
  std::vector<std::uint32_t> frontier;
  for (const auto& initial : initials) {
    const Configuration c = canonical ? initial.canonicalized() : initial;
    PackedConfig key = codec.pack(c);
    Shard& sh = shards[key.hash() % kShards];
    const auto [it, inserted] = sh.map.try_emplace(
        std::move(key), static_cast<std::uint32_t>(sh.slots.size()));
    if (inserted) {
      sh.slots.push_back(static_cast<std::uint32_t>(g.configs.size()));
      frontier.push_back(static_cast<std::uint32_t>(g.configs.size()));
      g.configs.push_back(c);
      g.adj.emplace_back();
      sh.ledger.add(MemoryComponent::kDedup, dedupEntry);
      sh.ledger.add(MemoryComponent::kCodec, codecSpill);
    }
  }
  refoldShards();

  LevelPool pool(K);
  std::vector<std::vector<Cand>> candBuf;
  // buckets[w][s]: stream-ordered (p, k) indices worker w produced for shard
  // s. Concatenating w = 0..K-1 restores stream order because phase 1 blocks
  // are contiguous and ascending in p.
  std::vector<std::array<std::vector<PK>, kShards>> buckets(K);
  std::atomic<std::uint32_t> shardCursor{0};
  std::atomic<std::uint32_t> nodeCursor{0};
  std::atomic<std::uint64_t> edgeCount{0};
  std::atomic<std::uint64_t> dedupCount{0};

  while (!frontier.empty()) {
    // The serial loop re-checks both caps before every pop, so a cap already
    // exceeded at level entry truncates with the whole frontier unexpanded.
    // (This duplicates the phase-3 replay's p = 0 step — same state, same
    // verdict — to skip the expand/dedup phases entirely.)
    tracker.checkpoint(frontier.size());
    {
      const bool overNodes = g.size() > options.maxNodes;
      const bool overBytes =
          options.maxBytes != 0 && tracker.totalBytes() > options.maxBytes;
      if (overNodes || overBytes) {
        g.truncated = true;
        g.truncatedByBudget = overBytes && !overNodes;
        tracker.recordTruncation(options.maxNodes, options.maxBytes,
                                 g.truncatedByBudget, frontier);
        break;
      }
    }
    const std::uint32_t L = static_cast<std::uint32_t>(frontier.size());
    if (candBuf.size() < L) candBuf.resize(L);

    // Phase 1: expand + bucket.
    pool.run([&](std::uint32_t w) {
      const std::uint32_t lo =
          static_cast<std::uint32_t>(std::uint64_t{L} * w / K);
      const std::uint32_t hi =
          static_cast<std::uint32_t>(std::uint64_t{L} * (w + 1) / K);
      auto& myBuckets = buckets[w];
      for (auto& b : myBuckets) b.clear();
      for (std::uint32_t p = lo; p < hi; ++p) {
        auto& cands = candBuf[p];
        cands.clear();
        const Configuration& current = g.configs[frontier[p]];
        auto sink = [&](Configuration&& next, const EdgeMeta& meta) {
          Cand c;
          c.key = codec.pack(next);
          c.shard = static_cast<std::uint8_t>(c.key.hash() % kShards);
          c.meta = meta;
          cands.push_back(std::move(c));
        };
        if (canonical) {
          forEachCanonicalSuccessor(proto, current, n, sink);
        } else {
          forEachConcreteSuccessor(proto, current, m, options.topology, sink);
        }
        for (std::uint32_t k = 0; k < cands.size(); ++k) {
          myBuckets[cands[k].shard].push_back(PK{p, k});
        }
      }
    });

    // Phase 2: per-shard dedup (each shard owned by one worker this level).
    shardCursor.store(0, std::memory_order_relaxed);
    pool.run([&](std::uint32_t) {
      for (;;) {
        const std::uint32_t s =
            shardCursor.fetch_add(1, std::memory_order_relaxed);
        if (s >= kShards) break;
        Shard& sh = shards[s];
        for (std::uint32_t w = 0; w < K; ++w) {
          for (const PK pk : buckets[w][s]) {
            Cand& c = candBuf[pk.p][pk.k];
            const auto [it, inserted] = sh.map.try_emplace(
                std::move(c.key), static_cast<std::uint32_t>(sh.slots.size()));
            if (inserted) {
              sh.slots.push_back(kUnassigned);
              sh.pending.push_back(
                  NewEntry{(std::uint64_t{pk.p} << 32) | pk.k, it->second,
                           static_cast<std::uint8_t>(s), &it->first});
              sh.ledger.add(MemoryComponent::kDedup, dedupEntry);
              sh.ledger.add(MemoryComponent::kCodec, codecSpill);
            }
            c.slotRef = it->second;
            c.dedupHit = !inserted;
          }
        }
      }
    });

    // Phase 3 (serial): replay the serial per-pop state — node count, modeled
    // bytes, frontier size — then assign ids in stream order (the serial
    // intern order). The replay runs even when no cap can fire so the
    // ledger's high-water marks are engine-invariant (DESIGN decision 18).
    std::uint64_t totalNew = 0;
    for (const Shard& sh : shards) totalNew += sh.pending.size();
    std::vector<std::uint32_t> newFrom(L, 0);
    for (const Shard& sh : shards) {
      for (const NewEntry& e : sh.pending) ++newFrom[e.pos >> 32];
    }

    const std::uint64_t levelStartNodes = g.size();
    const std::uint64_t adjStart = tracker.adjacencyBytes();
    std::uint32_t cut = L;  // number of level nodes that get expanded
    bool cutByBudget = false;
    {
      std::uint64_t newNodes = 0;
      std::uint64_t adjPrefix = 0;
      for (std::uint32_t p = 0; p < L; ++p) {
        const std::uint64_t k = levelStartNodes + newNodes;
        const std::uint64_t frontierEntries = (L - p) + newNodes;
        const std::uint64_t total =
            tracker.nodeDependentBytes(k) + adjStart + adjPrefix +
            frontierEntries * sizeof(std::uint32_t);
        tracker.noteReplayState(total, frontierEntries);
        const bool overNodes = k > options.maxNodes;
        const bool overBytes =
            options.maxBytes != 0 && total > options.maxBytes;
        if (overNodes || overBytes) {
          cut = p;
          cutByBudget = overBytes && !overNodes;
          break;
        }
        adjPrefix += paddedAllocBytes(std::uint64_t{candBuf[p].size()} *
                                      sizeof(Edge));
        newNodes += newFrom[p];
      }
    }
    if (cut < L) {
      // Serial exploration stops before expanding position `cut`; nodes
      // first discovered at or after it were never interned. They form a
      // suffix of every shard's stream-ordered pending list.
      for (Shard& sh : shards) {
        while (!sh.pending.empty() && (sh.pending.back().pos >> 32) >= cut) {
          sh.map.erase(sh.map.find(*sh.pending.back().key));
          sh.slots.pop_back();
          sh.pending.pop_back();
          sh.ledger.sub(MemoryComponent::kDedup, dedupEntry);
          sh.ledger.sub(MemoryComponent::kCodec, codecSpill);
        }
      }
    }

    std::vector<const NewEntry*> order;
    order.reserve(static_cast<std::size_t>(totalNew));
    for (const Shard& sh : shards) {
      for (const NewEntry& e : sh.pending) order.push_back(&e);
    }
    std::sort(order.begin(), order.end(),
              [](const NewEntry* a, const NewEntry* b) { return a->pos < b->pos; });

    std::vector<std::uint32_t> nextFrontier;
    nextFrontier.reserve(order.size());
    for (const NewEntry* e : order) {
      const std::uint32_t id = static_cast<std::uint32_t>(g.configs.size());
      shards[e->shard].slots[e->slotRef] = id;
      g.configs.push_back(codec.unpack(*e->key));
      g.adj.emplace_back();
      nextFrontier.push_back(id);
    }
    for (Shard& sh : shards) sh.pending.clear();
    refoldShards();
    // Adjacency charges for the expanded prefix, in serial order (the model
    // depends only on per-node edge counts, known since phase 1).
    for (std::uint32_t p = 0; p < cut; ++p) {
      tracker.recordNodeExpanded(candBuf[p].size());
    }

    // Phase 4: build adjacency for the expanded prefix of the level.
    nodeCursor.store(0, std::memory_order_relaxed);
    edgeCount.store(0, std::memory_order_relaxed);
    dedupCount.store(0, std::memory_order_relaxed);
    pool.run([&](std::uint32_t) {
      std::uint64_t localEdges = 0;
      std::uint64_t localDedup = 0;
      for (;;) {
        const std::uint32_t p =
            nodeCursor.fetch_add(1, std::memory_order_relaxed);
        if (p >= cut) break;
        const auto& cands = candBuf[p];
        auto& adj = g.adj[frontier[p]];
        adj.reserve(cands.size());
        for (const Cand& c : cands) {
          adj.push_back(Edge{shards[c.shard].slots[c.slotRef], c.meta.label,
                             c.meta.initiator, c.meta.responder, c.meta.changed,
                             c.meta.changedMobile, c.meta.changedName});
          ++localEdges;
          if (c.dedupHit) ++localDedup;
        }
      }
      edgeCount.fetch_add(localEdges, std::memory_order_relaxed);
      dedupCount.fetch_add(localDedup, std::memory_order_relaxed);
    });

    if (cut < L) {
      g.truncated = true;
      g.truncatedByBudget = cutByBudget;
      // The serial deque at the cap: the unexpanded level tail, then the new
      // nodes discovered by the expanded prefix, in discovery (= id) order.
      std::vector<std::uint32_t> rest(frontier.begin() + cut, frontier.end());
      rest.insert(rest.end(), nextFrontier.begin(), nextFrontier.end());
      tracker.recordLevel(cut, edgeCount.load(), dedupCount.load(),
                          rest.size());
      // Match the serial top-of-loop state at the cut before reporting it.
      tracker.checkpoint(rest.size());
      tracker.recordTruncation(options.maxNodes, options.maxBytes, cutByBudget,
                               rest);
      frontier = std::move(rest);
      break;
    }

    tracker.recordLevel(L, edgeCount.load(), dedupCount.load(),
                        nextFrontier.size());
    frontier = std::move(nextFrontier);
  }

  tracker.finish(frontier.size());
  return g;
}

}  // namespace ppn::detail
