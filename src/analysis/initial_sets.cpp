#include "analysis/initial_sets.h"

#include <stdexcept>

#include "core/engine.h"

namespace ppn {

namespace {

std::vector<LeaderStateId> leaderInitials(const Protocol& proto) {
  if (!proto.hasLeader()) return {};
  if (const auto init = proto.initialLeaderState(); init.has_value()) {
    return {*init};
  }
  const auto all = proto.allLeaderStates();
  if (all.empty()) {
    throw std::logic_error(
        "protocol '" + proto.name() +
        "' has a non-initialized leader whose states cannot be enumerated");
  }
  return all;
}

/// Crosses mobile vectors with the applicable leader states.
std::vector<Configuration> crossWithLeader(
    const Protocol& proto, std::vector<std::vector<StateId>> mobiles) {
  std::vector<Configuration> out;
  if (!proto.hasLeader()) {
    out.reserve(mobiles.size());
    for (auto& m : mobiles) out.push_back(Configuration{std::move(m), {}});
    return out;
  }
  const auto leaders = leaderInitials(proto);
  out.reserve(mobiles.size() * leaders.size());
  for (const auto& m : mobiles) {
    for (const LeaderStateId l : leaders) {
      out.push_back(Configuration{m, l});
    }
  }
  return out;
}

}  // namespace

std::vector<Configuration> declaredUniformInitials(const Protocol& proto,
                                                   std::uint32_t numMobile) {
  return {uniformConfiguration(proto, numMobile)};
}

std::vector<Configuration> allUniformInitials(const Protocol& proto,
                                              std::uint32_t numMobile) {
  std::vector<std::vector<StateId>> mobiles;
  for (StateId s = 0; s < proto.numMobileStates(); ++s) {
    mobiles.emplace_back(numMobile, s);
  }
  return crossWithLeader(proto, std::move(mobiles));
}

std::vector<Configuration> allConcreteConfigurations(const Protocol& proto,
                                                     std::uint32_t numMobile) {
  const StateId q = proto.numMobileStates();
  std::vector<std::vector<StateId>> mobiles;
  std::vector<StateId> current(numMobile, 0);
  for (;;) {
    mobiles.push_back(current);
    // Odometer increment.
    std::uint32_t pos = 0;
    while (pos < numMobile) {
      if (++current[pos] < q) break;
      current[pos] = 0;
      ++pos;
    }
    if (pos == numMobile) break;
  }
  return crossWithLeader(proto, std::move(mobiles));
}

std::vector<Configuration> allCanonicalConfigurations(const Protocol& proto,
                                                      std::uint32_t numMobile) {
  const StateId q = proto.numMobileStates();
  std::vector<std::vector<StateId>> mobiles;
  // Enumerate non-decreasing vectors of length numMobile over 0..q-1.
  std::vector<StateId> current(numMobile, 0);
  for (;;) {
    mobiles.push_back(current);
    // Find rightmost position that can be incremented.
    std::int64_t pos = static_cast<std::int64_t>(numMobile) - 1;
    while (pos >= 0 && current[static_cast<std::size_t>(pos)] == q - 1) --pos;
    if (pos < 0) break;
    const StateId v = ++current[static_cast<std::size_t>(pos)];
    for (auto i = static_cast<std::size_t>(pos) + 1; i < numMobile; ++i) {
      current[i] = v;  // keep non-decreasing
    }
  }
  return crossWithLeader(proto, std::move(mobiles));
}

}  // namespace ppn
