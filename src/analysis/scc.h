// Strongly connected components (iterative Tarjan) over a ConfigGraph.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/explore.h"

namespace ppn {

struct SccDecomposition {
  /// For each node, the id of its SCC (0-based, in reverse topological
  /// order: Tarjan emits sinks first).
  std::vector<std::uint32_t> sccOf;
  std::uint32_t numSccs = 0;

  /// Members of each SCC (built on demand by decomposeScc).
  std::vector<std::vector<std::uint32_t>> members;

  /// bottomScc[s] is true when SCC s has no *changed* edge leaving it.
  /// Null self-loops never leave an SCC, so only non-null edges matter.
  std::vector<bool> bottom;
};

/// Runs Tarjan's algorithm (iterative, no recursion) and computes members and
/// bottom flags.
SccDecomposition decomposeScc(const ConfigGraph& graph);

}  // namespace ppn
