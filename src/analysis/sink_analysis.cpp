#include "analysis/sink_analysis.h"

#include <algorithm>

namespace ppn {

SinkAnalysis analyzeSinks(const Protocol& proto, ExploreObserver* observer,
                          std::uint64_t exploreId) {
  const PhaseScope phase(observer, exploreId, "sink_analysis");
  SinkAnalysis out;
  const StateId q = proto.numMobileStates();

  for (StateId m = 0; m < q; ++m) {
    const MobilePair r = proto.mobileDelta(m, m);
    if (r.initiator == m && r.responder == m) {
      out.selfFixedStates.push_back(m);
    }
  }

  out.chainTarget.assign(q, kInvalidState);
  for (StateId s = 0; s < q; ++s) {
    // Follow the same pair of agents interacting repeatedly from (s, s).
    // The pair space is finite, so the walk enters a cycle within q^2 steps;
    // the chain "reaches m" when it hits the fixed pair (m, m).
    StateId a = s;
    StateId b = s;
    const std::size_t bound = static_cast<std::size_t>(q) * q + 1;
    for (std::size_t step = 0; step < bound; ++step) {
      const MobilePair r = proto.mobileDelta(a, b);
      if (r.initiator == a && r.responder == b) {
        if (a == b) out.chainTarget[s] = a;  // settled on a fixed (m, m)
        break;
      }
      a = r.initiator;
      b = r.responder;
    }
  }

  if (out.selfFixedStates.size() == 1) {
    const StateId m = out.selfFixedStates.front();
    const bool allReach = std::all_of(
        out.chainTarget.begin(), out.chainTarget.end(),
        [m](StateId t) { return t == m; });
    if (allReach) out.sink = m;
  }
  return out;
}

SinkAnalysis analyzeSinks(const Protocol& proto, const ExploreOptions& options) {
  return analyzeSinks(proto, options.observer, options.exploreId);
}

}  // namespace ppn
