// Exhaustive search over the space of all deterministic leaderless protocols
// with a given number of states — brute-force confirmation of the paper's
// lower bounds at small P:
//
//  * Proposition 2: no SYMMETRIC P-state protocol names a population of
//    N = P agents (under weak or global fairness, any uniform
//    initialization) — the search reports zero solvers over the full
//    symmetric space.
//  * Proposition 12 (positive control): the ASYMMETRIC space at P = 2 does
//    contain solvers (e.g. (s,s) -> (s, s+1 mod P)), so the search machinery
//    itself demonstrably can find solutions where they exist.
//
// The space of symmetric protocols with Q states has Q^Q * Q^(Q(Q-1))
// members (Q=2: 16, Q=3: 19683); the full deterministic space has
// (Q^2)^(Q^2) members (Q=2: 256). Larger Q is out of reach by design — the
// bounds are uniform in P, the search is a non-vacuous sanity check.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/explore.h"
#include "analysis/problem.h"
#include "core/protocol.h"
#include "obs/explore_observer.h"

namespace ppn {

/// A protocol given by explicit transition tables.
class TabularProtocol final : public Protocol {
 public:
  /// `table[a * q + b]` is delta(a, b). `symmetric` must match the table
  /// (verified in debug by verifySymmetric()).
  TabularProtocol(StateId q, std::vector<MobilePair> table, bool symmetric);

  std::string name() const override;
  StateId numMobileStates() const override { return q_; }
  bool isSymmetric() const override { return symmetric_; }
  MobilePair mobileDelta(StateId initiator, StateId responder) const override {
    return table_[initiator * q_ + responder];
  }

 private:
  StateId q_;
  std::vector<MobilePair> table_;
  bool symmetric_;
};

/// Number of symmetric deterministic protocols with q states.
std::uint64_t symmetricProtocolCount(StateId q);

/// Decodes the index-th symmetric protocol (0 <= index < count).
TabularProtocol decodeSymmetricProtocol(StateId q, std::uint64_t index);

/// Number of all deterministic protocols with q states: (q^2)^(q^2).
std::uint64_t allProtocolCount(StateId q);

/// Decodes the index-th protocol of the full deterministic space.
TabularProtocol decodeAnyProtocol(StateId q, std::uint64_t index);

enum class Fairness { kWeak, kGlobal };

struct SearchOutcome {
  std::uint64_t examined = 0;
  std::uint64_t solvers = 0;
  /// Candidates whose verdict came from a truncated exploration: neither
  /// solver nor non-solver. A lower-bound claim ("zero solvers") is only
  /// conclusive when this is zero too.
  std::uint64_t unknown = 0;
  /// Indices of the first few solving protocols (<= 8), for inspection.
  std::vector<std::uint64_t> solverIndices;
};

/// How often searches report progress: one SearchProgressEvent per this many
/// candidates examined (plus a final done=true event per search).
constexpr std::uint64_t kSearchProgressStride = 256;

/// Knobs for the exhaustive searches.
struct SearchOptions {
  /// Node cap for every per-candidate exploration.
  std::size_t maxNodes = 4'000'000;
  /// Byte budget for every per-candidate exploration (ExploreOptions.
  /// maxBytes; 0 disables). A budget-truncated exploration leaves the
  /// candidate `unknown`, exactly like a node-cap truncation.
  std::uint64_t maxBytes = 0;
  /// Graph representation for the inner explorations (ExploreOptions::
  /// storage); compressed by default, like exploreConcrete itself.
  GraphStorage storage = GraphStorage::kCompressed;
  /// Dedup-table spill threshold and run directory, forwarded verbatim to
  /// ExploreOptions::spillBytes / spillDir (0 = never spill).
  std::uint64_t spillBytes = 0;
  std::string spillDir;
  /// Worker threads dispatching CANDIDATES (the inner explorations stay
  /// serial — candidate-level parallelism dominates for these workloads).
  /// 1 = today's serial loop; 0 = hardware concurrency. The outcome is
  /// deterministic for any value: counts are exact and solverIndices holds
  /// the smallest candidate indices, not the first completions. At
  /// threads > 1 the observer is fed through a SerializedExploreObserver
  /// (obs/concurrent_observer.h), so it need not be thread-safe itself, and
  /// `problemFor` must be safe to call concurrently (the naming/counting
  /// problem factories are).
  std::uint32_t threads = 1;
  ExploreObserver* observer = nullptr;
  std::uint64_t searchId = 0;
};

/// Generic search: counts the protocols in the chosen space that solve an
/// arbitrary configuration-level problem. `problemFor` builds the problem
/// statement for each candidate (most problems ignore the protocol and
/// capture only the predicate; naming needs the protocol's name semantics).
/// With `selfStabilizing` the protocol must solve from EVERY configuration;
/// otherwise from SOME uniform initialization of the designer's choice.
///
/// A non-null `observer` receives a "search"-phase pair tagged with
/// `searchId`, one SearchProgressEvent per kSearchProgressStride candidates
/// plus a final done=true event, and is forwarded into every per-candidate
/// checker invocation. Those inner explorations get unique ascending
/// exploreIds of the form (searchId << 32) | seq (seq >= 1), so one JSONL
/// stream carrying several searches stays attributable.
SearchOutcome searchProblem(
    StateId q, std::uint32_t n, Fairness fairness, bool symmetricSpace,
    bool selfStabilizing,
    const std::function<Problem(const Protocol&)>& problemFor,
    ExploreObserver* observer = nullptr, std::uint64_t searchId = 0);

/// Options form (see SearchOptions for the threading contract).
SearchOutcome searchProblem(
    StateId q, std::uint32_t n, Fairness fairness, bool symmetricSpace,
    bool selfStabilizing,
    const std::function<Problem(const Protocol&)>& problemFor,
    const SearchOptions& options);

/// For every protocol in the chosen space, asks: does there EXIST a uniform
/// initialization (all agents in the same state, the designer's choice) from
/// which the protocol solves naming for a population of `n` agents under
/// `fairness`? Counts the protocols for which the answer is yes.
SearchOutcome searchUniformNaming(StateId q, std::uint32_t n, Fairness fairness,
                                  bool symmetricSpace,
                                  ExploreObserver* observer = nullptr,
                                  std::uint64_t searchId = 0);

SearchOutcome searchUniformNaming(StateId q, std::uint32_t n, Fairness fairness,
                                  bool symmetricSpace,
                                  const SearchOptions& options);

/// Like searchUniformNaming but quantifying over ARBITRARY initialization
/// (self-stabilizing naming): the protocol must solve from every
/// configuration.
SearchOutcome searchSelfStabilizingNaming(StateId q, std::uint32_t n,
                                          Fairness fairness,
                                          bool symmetricSpace,
                                          ExploreObserver* observer = nullptr,
                                          std::uint64_t searchId = 0);

SearchOutcome searchSelfStabilizingNaming(StateId q, std::uint32_t n,
                                          Fairness fairness,
                                          bool symmetricSpace,
                                          const SearchOptions& options);

}  // namespace ppn
