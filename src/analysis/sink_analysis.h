// Sink-state analysis (paper, Section 3.1, Proposition 6 and Lemma 5).
//
// For a symmetric protocol, following the diagonal chain
// (s,s) -> (s1,s1) -> (s2,s2) -> ... from any state must eventually cycle;
// Proposition 6 shows that for any P-state symmetric naming protocol the
// cycle is a single self-fixed state m — the *sink* — satisfying:
//   (1) (m,m) -> (m,m),
//   (2) every state's diagonal chain reaches m,
//   (3) m never appears at convergence when N < P.
// This module computes (1) and (2) syntactically for ANY protocol, so tests
// can confirm the paper's structure on the implemented protocols (Protocols
// 1-3 have sink 0; the asymmetric protocol has no diagonal fixed point at
// all, which is exactly how it evades the symmetric lower bounds).
#pragma once

#include <optional>
#include <vector>

#include "analysis/explore.h"
#include "core/protocol.h"
#include "obs/explore_observer.h"

namespace ppn {

struct SinkAnalysis {
  /// States m with delta(m,m) = (m,m).
  std::vector<StateId> selfFixedStates;
  /// For each state s, where its diagonal chain (s,s) -> (s',s') -> ...
  /// first enters a cycle; the chain's eventual cycle entry point.
  std::vector<StateId> chainTarget;
  /// The unique sink in the paper's sense, when it exists: the single
  /// self-fixed state that every diagonal chain reaches.
  std::optional<StateId> sink;
};

/// Runs the diagonal-chain analysis. For asymmetric protocols the diagonal
/// rule (s,s) -> (p,q) may split; the chain then follows the *initiator*
/// component p (the analysis is still well-defined, but Prop 6's uniqueness
/// claim only applies to symmetric protocols).
///
/// The analysis is purely syntactic (no exploration); a non-null `observer`
/// gets a single "sink_analysis" phase pair for timeline completeness.
SinkAnalysis analyzeSinks(const Protocol& proto,
                          ExploreObserver* observer = nullptr,
                          std::uint64_t exploreId = 0);

/// Options form for API uniformity with the explorers/checkers: uses
/// options.observer/exploreId. The analysis itself is O(|Q|^2) syntactic
/// work, so options.threads is accepted but has nothing to parallelize.
SinkAnalysis analyzeSinks(const Protocol& proto, const ExploreOptions& options);

}  // namespace ppn
