#include "analysis/table1.h"

#include <stdexcept>

#include "analysis/global_checker.h"
#include "analysis/initial_sets.h"
#include "analysis/protocol_search.h"
#include "analysis/weak_checker.h"
#include "naming/asymmetric_naming.h"
#include "naming/counting_protocol.h"
#include "naming/global_leader_naming.h"
#include "naming/leader_uniform_naming.h"
#include "naming/selfstab_weak_naming.h"
#include "naming/symmetric_global_naming.h"
#include "util/json.h"

namespace ppn {

namespace {

/// Negation for impossibility cells: the candidate FAILING to solve is the
/// expected (passing) outcome. Unknown stays unknown.
Table1Check expectFail(Table1Check solves) {
  if (solves == Table1Check::kUnknown) return Table1Check::kUnknown;
  return solves == Table1Check::kFail ? Table1Check::kPass : Table1Check::kFail;
}

/// Checker/search dispatch for one cell, assigning explore/search event ids
/// from the cell's bases (pre-increment, so the first explore is base + 1).
/// Inner explorations of an exhaustive search get searchId << 32, which the
/// stride keeps disjoint from the direct explore range.
struct Checks {
  ExploreObserver* observer = nullptr;
  std::uint32_t threads = 1;
  std::uint64_t maxBytes = 0;
  std::uint64_t nextExplore = 0;
  std::uint64_t nextSearch = 256;

  ExploreOptions exploreOptions() {
    ExploreOptions options;
    options.maxNodes = 8'000'000;
    options.maxBytes = maxBytes;
    options.threads = threads;
    options.observer = observer;
    options.exploreId = ++nextExplore;
    return options;
  }

  Table1Check weakSolves(const Protocol& proto,
                         const std::vector<Configuration>& initials,
                         const Problem& problem) {
    const WeakVerdict v =
        checkWeakFairness(proto, problem, initials, exploreOptions());
    if (!v.explored) return Table1Check::kUnknown;
    return v.solves ? Table1Check::kPass : Table1Check::kFail;
  }

  Table1Check weakSolves(const Protocol& proto,
                         const std::vector<Configuration>& initials) {
    return weakSolves(proto, initials, namingProblem(proto));
  }

  Table1Check globalSolves(const Protocol& proto,
                           const std::vector<Configuration>& initials) {
    const GlobalVerdict v = checkGlobalFairness(proto, namingProblem(proto),
                                                initials, exploreOptions());
    if (!v.explored) return Table1Check::kUnknown;
    return v.solves ? Table1Check::kPass : Table1Check::kFail;
  }

  /// "No solver exists" via exhaustive search: conclusive only when every
  /// candidate was fully checked (outcome.unknown == 0).
  Table1Check searchEmpty(StateId q, std::uint32_t n, Fairness fairness) {
    SearchOptions options;
    options.threads = threads;
    options.maxBytes = maxBytes;
    options.observer = observer;
    options.searchId = ++nextSearch;
    const SearchOutcome out =
        searchUniformNaming(q, n, fairness, /*symmetricSpace=*/true, options);
    if (out.solvers > 0) return Table1Check::kFail;
    return out.unknown > 0 ? Table1Check::kUnknown : Table1Check::kPass;
  }
};

}  // namespace

Table1Check operator&(Table1Check a, Table1Check b) {
  if (a == Table1Check::kFail || b == Table1Check::kFail)
    return Table1Check::kFail;
  if (a == Table1Check::kUnknown || b == Table1Check::kUnknown)
    return Table1Check::kUnknown;
  return Table1Check::kPass;
}

const char* table1CheckName(Table1Check c) {
  switch (c) {
    case Table1Check::kPass:
      return "pass";
    case Table1Check::kFail:
      return "fail";
    case Table1Check::kUnknown:
      return "unknown";
  }
  return "?";
}

std::uint32_t table1CellCount() { return 8; }

Table1CellResult runTable1Cell(std::uint32_t index, StateId p,
                               const Table1Options& options) {
  if (p < 2 || p > 4) {
    throw std::invalid_argument("table1: need 2 <= p <= 4, got " +
                                std::to_string(p));
  }
  Checks checks;
  checks.observer = options.observer;
  checks.threads = options.threads;
  checks.maxBytes = options.maxBytes;
  checks.nextExplore = options.exploreIdBase;
  checks.nextSearch = options.searchIdBase;

  switch (index) {
    // ---- Column: asymmetric rules (weak/global fairness), all leader rows.
    // Prop 12: P states, no leader, self-stabilizing.
    case 0: {
      const AsymmetricNaming proto(p);
      const Table1Check okWeak =
          checks.weakSolves(proto, allConcreteConfigurations(proto, p));
      const Table1Check okGlobal =
          checks.globalSolves(proto, allCanonicalConfigurations(proto, p));
      return {"any leader row / asymmetric / weak+global",
              "Prop 12: possible with P states (self-stabilizing)",
              "weak+global checkers, arbitrary init, N=P",
              "P", okWeak & okGlobal};
    }

    // ---- Cell: no leader / symmetric / weak — impossible (Prop 1).
    case 1: {
      const SymmetricGlobalNaming candidate(p);
      const Table1Check solves = checks.weakSolves(
          candidate, allUniformInitials(candidate, p), namingProblem(candidate));
      const Table1Check empty = checks.searchEmpty(2, 2, Fairness::kWeak);
      return {"no leader / symmetric / weak",
              "Prop 1: impossible",
              "adversary found vs P+1-state candidate; exhaustive search @ Q=2",
              "-", expectFail(solves) & empty};
    }

    // ---- Cell: no leader / symmetric / global — P+1 states (Prop 13 + Prop 2).
    case 2: {
      const SymmetricGlobalNaming proto(p);
      Table1Check ok = proto.numMobileStates() == p + 1 ? Table1Check::kPass
                                                        : Table1Check::kFail;
      for (std::uint32_t n = 3; n <= p && ok == Table1Check::kPass; ++n) {
        ok = ok & checks.globalSolves(proto, allCanonicalConfigurations(proto, n));
      }
      const Table1Check lower = checks.searchEmpty(2, 2, Fairness::kGlobal);
      return {"no leader / symmetric / global",
              "Prop 13: P+1 states; Prop 2: P states impossible",
              "global checker (N=3..P); exhaustive P-state search @ Q=2",
              "P+1", ok & lower};
    }

    // ---- Cells: non-initialized leader / symmetric (weak and global) — P+1
    // states (Prop 16; lower bound Prop 4).
    case 3: {
      const SelfStabWeakNaming proto(p);
      Table1Check ok = proto.numMobileStates() == p + 1 ? Table1Check::kPass
                                                        : Table1Check::kFail;
      for (std::uint32_t n = 1; n <= p && ok == Table1Check::kPass; ++n) {
        ok = ok & checks.weakSolves(proto, allConcreteConfigurations(proto, n));
      }
      return {"non-init leader / symmetric / weak+global",
              "Prop 16: P+1 states (self-stabilizing, leader too)",
              "weak checker, arbitrary mobile+leader init, N=1..P",
              "P+1", ok};
    }

    // ---- Cell: initialized leader / symmetric / weak / initialized agents —
    // P states (Prop 14).
    case 4: {
      const LeaderUniformNaming proto(p);
      Table1Check ok = proto.numMobileStates() == p ? Table1Check::kPass
                                                    : Table1Check::kFail;
      for (std::uint32_t n = 1; n <= p && ok == Table1Check::kPass; ++n) {
        ok = ok & checks.weakSolves(proto, declaredUniformInitials(proto, n));
      }
      return {"init leader / symmetric / weak / init agents",
              "Prop 14: P states",
              "weak checker from declared uniform init, N=1..P",
              "P", ok};
    }

    // ---- Cell: initialized leader / symmetric / weak / NON-init agents —
    // P+1 states (Prop 16); P states impossible (Theorem 11).
    case 5: {
      const GlobalLeaderNaming candidate(p);  // the natural P-state candidate
      const Table1Check solves = checks.weakSolves(
          candidate, allConcreteConfigurations(candidate, p));
      return {"init leader / symmetric / weak / non-init agents",
              "Thm 11: P states impossible (P+1 needed, via Prop 16)",
              "weak checker defeats the P-state Protocol 3 at N=P",
              "P+1", expectFail(solves)};
    }

    // ---- Cell: initialized leader / symmetric / global — P states (Prop 17).
    case 6: {
      const GlobalLeaderNaming proto(p);
      Table1Check ok = proto.numMobileStates() == p ? Table1Check::kPass
                                                    : Table1Check::kFail;
      for (std::uint32_t n = 1; n <= p && ok == Table1Check::kPass; ++n) {
        ok = ok & checks.globalSolves(proto, allCanonicalConfigurations(proto, n));
      }
      return {"init leader / symmetric / global",
              "Prop 17: P states",
              "global checker, arbitrary mobile init, N=1..P",
              "P", ok};
    }

    // ---- Substrate: Theorem 15 (Protocol 1 counting + by-product naming).
    case 7: {
      const CountingProtocol proto(p);
      Table1Check ok = Table1Check::kPass;
      for (std::uint32_t n = 1; n <= p && ok == Table1Check::kPass; ++n) {
        ok = ok & checks.weakSolves(proto, allConcreteConfigurations(proto, n),
                                    countingProblem(proto, n));
        if (ok == Table1Check::kPass && n < p) {
          ok = ok & checks.weakSolves(proto, allConcreteConfigurations(proto, n));
        }
      }
      return {"substrate: counting (Protocol 1)",
              "Thm 15: counts N<=P, names N<P, P states",
              "weak checker: counting N=1..P, naming N=1..P-1",
              "P", ok};
    }

    default:
      throw std::invalid_argument("table1: cell index out of range: " +
                                  std::to_string(index));
  }
}

bool table1AllPass(const std::vector<Table1CellResult>& cells) {
  for (const Table1CellResult& c : cells) {
    if (c.verdict != Table1Check::kPass) return false;
  }
  return true;
}

std::string table1Json(StateId p, const std::vector<Table1CellResult>& cells) {
  JsonWriter w;
  w.beginObject();
  w.key("experiment").value("table1");
  w.key("p").value(static_cast<std::uint64_t>(p));
  w.key("cells").beginArray();
  for (const Table1CellResult& r : cells) {
    w.beginObject();
    w.key("cell").value(r.cell);
    w.key("claim").value(r.claim);
    w.key("checked_by").value(r.mechanism);
    w.key("states").value(r.states);
    w.key("verdict").value(table1CheckName(r.verdict));
    w.endObject();
  }
  w.endArray();
  w.key("overall").value(table1AllPass(cells) ? "pass" : "fail");
  w.endObject();
  return w.str();
}

}  // namespace ppn
