// Problem specifications the fairness checkers verify against.
//
// A (static) problem in the paper is a predicate D on configurations that
// every execution must reach and then satisfy forever (Section 2). For
// naming, the predicate alone is not enough: the *per-agent* names must also
// eventually never change, which `requireMobileQuiescence` captures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/configuration.h"
#include "core/protocol.h"

namespace ppn {

struct Problem {
  std::string name;

  /// Must hold in every configuration from some point on. MUST be
  /// permutation-invariant over mobile agents (the global checker runs on
  /// the canonical quotient graph).
  std::function<bool(const Configuration&)> holds;

  /// When true, mobile states must additionally be frozen from some point on
  /// (naming: "a name that eventually does not change"). Leader-only changes
  /// are always tolerated.
  bool requireMobileQuiescence = false;
};

/// The naming problem for `proto`: distinct, valid, eventually-frozen names.
/// The protocol reference must outlive the Problem.
Problem namingProblem(const Protocol& proto);

/// The counting problem (paper Theorem 15): the leader's answer must
/// stabilize to the true population size. Mobile states may keep whatever
/// behaviour they like.
Problem countingProblem(const Protocol& proto, std::uint32_t populationSize);

/// Stabilization to an arbitrary configuration predicate (e.g. the Section 2
/// color example's "all agents black").
Problem predicateProblem(std::string name,
                         std::function<bool(const Configuration&)> holds);

}  // namespace ppn
