#include "analysis/explore.h"

#include <chrono>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "core/engine.h"

namespace ppn {

namespace {

/// Whether any agent's projected name differs between the two mobile
/// vectors (same length by construction).
bool namesDiffer(const Protocol& proto, const std::vector<StateId>& before,
                 const std::vector<StateId>& after) {
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (proto.nameOf(before[i]) != proto.nameOf(after[i])) return true;
  }
  return false;
}

class Interner {
 public:
  explicit Interner(ConfigGraph& g) : graph_(g) {}

  /// Returns (id, isNew).
  std::pair<std::uint32_t, bool> intern(const Configuration& c) {
    const auto [it, inserted] =
        ids_.emplace(c, static_cast<std::uint32_t>(graph_.configs.size()));
    if (inserted) {
      graph_.configs.push_back(c);
      graph_.adj.emplace_back();
    }
    return {it->second, inserted};
  }

 private:
  ConfigGraph& graph_;
  std::unordered_map<Configuration, std::uint32_t, ConfigurationHash> ids_;
};

/// Progress bookkeeping for one exploration. All methods are single-branch
/// no-ops when no observer is attached, so the unobserved BFS stays
/// bit-identical to the pre-telemetry loop.
class ExploreTracker {
 public:
  ExploreTracker(ExploreObserver* obs, std::uint64_t exploreId,
                 const ConfigGraph& g)
      : obs_(obs), exploreId_(exploreId), g_(&g) {
    if (obs_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  void recordEdge(bool dedupHit) {
    if (obs_ == nullptr) return;
    ++edges_;
    if (dedupHit) ++dedupHits_;
  }

  void recordExpansion(std::size_t frontierSize) {
    if (obs_ == nullptr) return;
    ++expanded_;
    if (expanded_ % kExploreProgressStride == 0) emit(frontierSize, false);
  }

  void recordTruncation(std::size_t maxNodes,
                        const std::deque<std::uint32_t>& frontier) {
    if (obs_ == nullptr) return;
    ExploreTruncatedEvent e;
    e.exploreId = exploreId_;
    e.nodes = g_->size();
    e.maxNodes = maxNodes;
    e.frontier.assign(frontier.begin(), frontier.end());
    obs_->onTruncated(e);
  }

  void finish(std::size_t frontierSize) {
    if (obs_ == nullptr) return;
    emit(frontierSize, true);
  }

 private:
  void emit(std::size_t frontierSize, bool done) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    ExploreProgressEvent e;
    e.exploreId = exploreId_;
    e.nodes = g_->size();
    e.frontier = frontierSize;
    e.edges = edges_;
    e.dedupHits = dedupHits_;
    e.bytesEstimate = bytesEstimate();
    e.nodesPerSec =
        elapsed > 0.0 ? static_cast<double>(expanded_) / elapsed : 0.0;
    e.elapsedMillis = elapsed * 1e3;
    e.done = done;
    obs_->onExploreProgress(e);
  }

  /// Approximate heap footprint: interned configurations (struct + mobile
  /// vector payload) plus adjacency (vector headers + edge payload).
  std::uint64_t bytesEstimate() const {
    const std::uint64_t perConfig =
        sizeof(Configuration) +
        (g_->configs.empty() ? 0
                             : g_->configs.front().mobile.size() *
                                   sizeof(StateId));
    return g_->size() * (perConfig + sizeof(std::vector<Edge>)) +
           edges_ * sizeof(Edge);
  }

  ExploreObserver* obs_;
  std::uint64_t exploreId_;
  const ConfigGraph* g_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t expanded_ = 0;
  std::uint64_t edges_ = 0;
  std::uint64_t dedupHits_ = 0;
};

}  // namespace

ConfigGraph exploreConcrete(const Protocol& proto,
                            const std::vector<Configuration>& initials,
                            std::size_t maxNodes,
                            const InteractionGraph* topology,
                            ExploreObserver* observer,
                            std::uint64_t exploreId) {
  if (initials.empty()) {
    throw std::invalid_argument("exploreConcrete: no initial configurations");
  }
  ConfigGraph g;
  const std::uint32_t n = initials.front().numMobile();
  const std::uint32_t m = n + (proto.hasLeader() ? 1u : 0u);
  g.numParticipants = m;
  if (topology != nullptr && topology->numParticipants() != m) {
    throw std::invalid_argument(
        "exploreConcrete: topology participant count mismatch");
  }

  const PhaseScope phase(observer, exploreId, "explore");
  ExploreTracker tracker(observer, exploreId, g);
  Interner interner(g);
  std::deque<std::uint32_t> frontier;
  for (const auto& c : initials) {
    if (c.numMobile() != n) {
      throw std::invalid_argument("exploreConcrete: mixed population sizes");
    }
    const auto [id, isNew] = interner.intern(c);
    if (isNew) frontier.push_back(id);
  }

  while (!frontier.empty()) {
    if (g.size() > maxNodes) {
      g.truncated = true;
      tracker.recordTruncation(maxNodes, frontier);
      break;
    }
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    tracker.recordExpansion(frontier.size());
    // Copy: interning may reallocate configs while we expand.
    const Configuration current = g.configs[id];

    auto addEdge = [&](const Configuration& next, PairLabel label,
                       std::uint32_t initiator, std::uint32_t responder,
                       bool changedMobile) {
      const bool changed = !(next == current);
      const bool changedName =
          changedMobile && namesDiffer(proto, current.mobile, next.mobile);
      const auto [to, isNew] = interner.intern(next);
      if (isNew) frontier.push_back(to);
      tracker.recordEdge(!isNew);
      g.adj[id].push_back(Edge{to, label, static_cast<std::uint16_t>(initiator),
                               static_cast<std::uint16_t>(responder), changed,
                               changedMobile, changedName});
    };

    for (std::uint32_t i = 0; i < m; ++i) {
      for (std::uint32_t j = i + 1; j < m; ++j) {
        if (topology != nullptr && !topology->hasEdge(i, j)) continue;
        const PairLabel label = pairLabel(i, j, m);
        // Orientation 1: i initiates.
        Configuration next = current;
        applyInteraction(proto, next, Interaction{i, j});
        const bool mobileChanged1 = next.mobile != current.mobile;
        addEdge(next, label, i, j, mobileChanged1);
        // Orientation 2: j initiates (distinct only for asymmetric
        // mobile-mobile rules; leader interactions are orientation-free).
        const bool involvesLeader = proto.hasLeader() && j == m - 1;
        if (!involvesLeader) {
          Configuration next2 = current;
          applyInteraction(proto, next2, Interaction{j, i});
          if (!(next2 == next)) {
            addEdge(next2, label, j, i, next2.mobile != current.mobile);
          }
        }
      }
    }
  }
  tracker.finish(frontier.size());
  return g;
}

ConfigGraph exploreCanonical(const Protocol& proto,
                             const std::vector<Configuration>& initials,
                             std::size_t maxNodes, ExploreObserver* observer,
                             std::uint64_t exploreId) {
  if (initials.empty()) {
    throw std::invalid_argument("exploreCanonical: no initial configurations");
  }
  ConfigGraph g;
  const std::uint32_t n = initials.front().numMobile();
  g.numParticipants = n + (proto.hasLeader() ? 1u : 0u);

  const PhaseScope phase(observer, exploreId, "explore");
  ExploreTracker tracker(observer, exploreId, g);
  Interner interner(g);
  std::deque<std::uint32_t> frontier;
  for (const auto& c : initials) {
    if (c.numMobile() != n) {
      throw std::invalid_argument("exploreCanonical: mixed population sizes");
    }
    const auto [id, isNew] = interner.intern(c.canonicalized());
    if (isNew) frontier.push_back(id);
  }

  while (!frontier.empty()) {
    if (g.size() > maxNodes) {
      g.truncated = true;
      tracker.recordTruncation(maxNodes, frontier);
      break;
    }
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    tracker.recordExpansion(frontier.size());
    const Configuration current = g.configs[id];

    auto addEdge = [&](Configuration next, bool changedMobile) {
      const bool changedName =
          changedMobile && namesDiffer(proto, current.mobile, next.mobile);
      next = next.canonicalized();
      const bool changed = changedMobile || !(next == current) ||
                           next.leader != current.leader;
      if (!changed) return;  // canonical graphs omit null edges
      const auto [to, isNew] = interner.intern(next);
      if (isNew) frontier.push_back(to);
      tracker.recordEdge(!isNew);
      g.adj[id].push_back(Edge{to, 0xffff, 0, 0, true, changedMobile,
                               changedName});
    };

    // Mobile-mobile interactions: pick representative agent indices for each
    // present state pair. The canonical form is sorted, so equal states are
    // adjacent; scanning index pairs over *distinct positions* covers every
    // state pair including homonym pairs, with duplicates deduplicated by
    // interning. N is tiny in checker workloads, so the O(N^2) scan is fine.
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) {
        // Skip repeats of the same (state_i, state_j) combination.
        if (i > 0 && current.mobile[i - 1] == current.mobile[i]) continue;
        if (j > i + 1 && current.mobile[j - 1] == current.mobile[j]) continue;
        Configuration next = current;
        applyInteraction(proto, next, Interaction{i, j});
        addEdge(next, next.mobile != current.mobile);
        Configuration next2 = current;
        applyInteraction(proto, next2, Interaction{j, i});
        addEdge(next2, next2.mobile != current.mobile);
      }
    }
    if (proto.hasLeader()) {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (i > 0 && current.mobile[i - 1] == current.mobile[i]) continue;
        Configuration next = current;
        applyInteraction(proto, next, Interaction{n, i});
        addEdge(next, next.mobile != current.mobile);
      }
    }
  }
  tracker.finish(frontier.size());
  return g;
}

}  // namespace ppn
