#include "analysis/explore.h"

#include <deque>
#include <stdexcept>
#include <unordered_map>

#include <unistd.h>

#include "analysis/explore_impl.h"
#include "analysis/packed_config.h"
#include "obs/resource_sampler.h"

namespace ppn {

namespace {

/// Visited table keyed by the packed encoding: probes cost one precomputed
/// hash load plus a memcmp instead of re-hashing a std::vector<StateId>.
class Interner {
 public:
  Interner(ConfigGraph& g, const PackedCodec& codec) : graph_(g), codec_(codec) {}

  /// Returns (id, isNew).
  std::pair<std::uint32_t, bool> intern(const Configuration& c) {
    const auto [it, inserted] = ids_.try_emplace(
        codec_.pack(c), static_cast<std::uint32_t>(graph_.configs.size()));
    if (inserted) {
      graph_.configs.push_back(c);
      graph_.adj.emplace_back();
    }
    return {it->second, inserted};
  }

 private:
  ConfigGraph& graph_;
  const PackedCodec& codec_;
  std::unordered_map<PackedConfig, std::uint32_t, PackedConfigHash> ids_;
};

void validateInitials(const char* where,
                      const std::vector<Configuration>& initials) {
  if (initials.empty()) {
    throw std::invalid_argument(std::string(where) +
                                ": no initial configurations");
  }
  const std::uint32_t n = initials.front().numMobile();
  for (const auto& c : initials) {
    if (c.numMobile() != n) {
      throw std::invalid_argument(std::string(where) +
                                  ": mixed population sizes");
    }
  }
}

}  // namespace

namespace detail {

void ExploreTracker::emitMemorySample(double elapsedMillis, bool done) {
  MemorySampleEvent m;
  m.exploreId = exploreId_;
  m.configsBytes = ledger_.component(MemoryComponent::kConfigs);
  m.adjacencyBytes = ledger_.component(MemoryComponent::kAdjacency);
  m.dedupBytes = ledger_.component(MemoryComponent::kDedup);
  m.frontierBytes = ledger_.component(MemoryComponent::kFrontier);
  m.codecBytes = ledger_.component(MemoryComponent::kCodec);
  m.totalBytes = ledger_.total();
  m.highWaterBytes = ledger_.highWater();
  m.spillBytes = spillDiskBytes_;
  m.spillRuns = spillRuns_;
  if (const auto self =
          sampleProcessResources(static_cast<std::int64_t>(::getpid()))) {
    m.rssBytes = self->rssBytes;
  }
  m.elapsedMillis = elapsedMillis;
  m.done = done;
  obs_->onMemorySample(m);
}

}  // namespace detail

std::string truncationReason(const ConfigGraph& g,
                             const ExploreOptions& options) {
  if (g.truncatedByBudget) {
    return "state space exceeded the " + std::to_string(options.maxBytes) +
           "-byte memory budget; no verdict";
  }
  return "state space exceeded " + std::to_string(options.maxNodes) +
         " configurations; no verdict";
}

std::uint64_t configGraphBytes(const ConfigGraph& g) {
  if (g.compressed()) return g.packed.modeledBytes();
  std::uint64_t bytes = 0;
  for (const Configuration& c : g.configs) {
    bytes += sizeof(Configuration) + c.mobile.capacity() * sizeof(StateId);
  }
  for (const auto& edges : g.adj) {
    bytes += sizeof(std::vector<Edge>) + edges.capacity() * sizeof(Edge);
  }
  return bytes;
}

ConfigGraph exploreConcrete(const Protocol& proto,
                            const std::vector<Configuration>& initials,
                            const ExploreOptions& options) {
  validateInitials("exploreConcrete", initials);
  const std::uint32_t n = initials.front().numMobile();
  const std::uint32_t m = n + (proto.hasLeader() ? 1u : 0u);
  if (options.topology != nullptr &&
      options.topology->numParticipants() != m) {
    throw std::invalid_argument(
        "exploreConcrete: topology participant count mismatch");
  }
  if (detail::resolveThreads(options.threads) > 1) {
    return detail::exploreParallelImpl(proto, initials, options,
                                       /*canonical=*/false);
  }
  if (options.storage == GraphStorage::kCompressed) {
    return detail::exploreSerialCompressed(proto, initials, options,
                                           /*canonical=*/false);
  }

  ConfigGraph g;
  g.numParticipants = m;
  const PhaseScope phase(options.observer, options.exploreId, "explore");
  const PackedCodec codec(PackedCodec::Form::kConcrete, proto, n);
  detail::ExploreTracker tracker(options.observer, options.exploreId, g, codec,
                                 n);
  Interner interner(g, codec);
  std::deque<std::uint32_t> frontier;
  for (const auto& c : initials) {
    const auto [id, isNew] = interner.intern(c);
    if (isNew) {
      frontier.push_back(id);
      tracker.recordInterned();
    }
  }

  std::vector<std::pair<Configuration, detail::EdgeMeta>> cands;
  std::vector<std::uint32_t> targets;
  while (!frontier.empty()) {
    tracker.checkpoint(frontier.size());
    const bool overNodes = g.size() > options.maxNodes;
    const bool overBytes =
        options.maxBytes != 0 && tracker.totalBytes() > options.maxBytes;
    if (overNodes || overBytes) {
      g.truncated = true;
      g.truncatedByBudget = overBytes && !overNodes;
      tracker.recordTruncation(options.maxNodes, options.maxBytes,
                               g.truncatedByBudget, frontier);
      break;
    }
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    tracker.recordExpansion(frontier.size());
    // Copy: interning may reallocate configs while we expand.
    const Configuration current = g.configs[id];

    // Enumerate-then-intern: same candidate order as the fused loop (the
    // enumerators never read graph state), sectioned so the tracker can
    // report expand vs dedup throughput separately.
    {
      const detail::SectionTimer timer(tracker,
                                       detail::ExploreTracker::Section::kExpand);
      cands.clear();
      detail::forEachConcreteSuccessor(
          proto, current, m, options.topology,
          [&](Configuration&& next, const detail::EdgeMeta& meta) {
            cands.emplace_back(std::move(next), meta);
          });
    }
    targets.clear();
    {
      const detail::SectionTimer timer(tracker,
                                       detail::ExploreTracker::Section::kDedup);
      for (auto& [next, meta] : cands) {
        const auto [to, isNew] = interner.intern(next);
        if (isNew) {
          frontier.push_back(to);
          tracker.recordInterned();
        }
        tracker.recordEdge(!isNew);
        targets.push_back(to);
      }
    }
    {
      const detail::SectionTimer timer(tracker,
                                       detail::ExploreTracker::Section::kAppend);
      for (std::size_t k = 0; k < cands.size(); ++k) {
        const detail::EdgeMeta& meta = cands[k].second;
        g.adj[id].push_back(Edge{targets[k], meta.label, meta.initiator,
                                 meta.responder, meta.changed,
                                 meta.changedMobile, meta.changedName});
      }
    }
    tracker.recordNodeExpanded(g.adj[id].size());
  }
  tracker.finish(frontier.size());
  return g;
}

ConfigGraph exploreCanonical(const Protocol& proto,
                             const std::vector<Configuration>& initials,
                             const ExploreOptions& options) {
  validateInitials("exploreCanonical", initials);
  if (options.topology != nullptr) {
    throw std::invalid_argument(
        "exploreCanonical: topologies require the concrete graph");
  }
  const std::uint32_t n = initials.front().numMobile();
  if (detail::resolveThreads(options.threads) > 1) {
    return detail::exploreParallelImpl(proto, initials, options,
                                       /*canonical=*/true);
  }
  if (options.storage == GraphStorage::kCompressed) {
    return detail::exploreSerialCompressed(proto, initials, options,
                                           /*canonical=*/true);
  }

  ConfigGraph g;
  g.numParticipants = n + (proto.hasLeader() ? 1u : 0u);
  const PhaseScope phase(options.observer, options.exploreId, "explore");
  const PackedCodec codec(PackedCodec::Form::kCanonical, proto, n);
  detail::ExploreTracker tracker(options.observer, options.exploreId, g, codec,
                                 n);
  Interner interner(g, codec);
  std::deque<std::uint32_t> frontier;
  for (const auto& c : initials) {
    const auto [id, isNew] = interner.intern(c.canonicalized());
    if (isNew) {
      frontier.push_back(id);
      tracker.recordInterned();
    }
  }

  std::vector<std::pair<Configuration, detail::EdgeMeta>> cands;
  std::vector<std::uint32_t> targets;
  while (!frontier.empty()) {
    tracker.checkpoint(frontier.size());
    const bool overNodes = g.size() > options.maxNodes;
    const bool overBytes =
        options.maxBytes != 0 && tracker.totalBytes() > options.maxBytes;
    if (overNodes || overBytes) {
      g.truncated = true;
      g.truncatedByBudget = overBytes && !overNodes;
      tracker.recordTruncation(options.maxNodes, options.maxBytes,
                               g.truncatedByBudget, frontier);
      break;
    }
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    tracker.recordExpansion(frontier.size());
    const Configuration current = g.configs[id];

    {
      const detail::SectionTimer timer(tracker,
                                       detail::ExploreTracker::Section::kExpand);
      cands.clear();
      detail::forEachCanonicalSuccessor(
          proto, current, n,
          [&](Configuration&& next, const detail::EdgeMeta& meta) {
            cands.emplace_back(std::move(next), meta);
          });
    }
    targets.clear();
    {
      const detail::SectionTimer timer(tracker,
                                       detail::ExploreTracker::Section::kDedup);
      for (auto& [next, meta] : cands) {
        const auto [to, isNew] = interner.intern(next);
        if (isNew) {
          frontier.push_back(to);
          tracker.recordInterned();
        }
        tracker.recordEdge(!isNew);
        targets.push_back(to);
      }
    }
    {
      const detail::SectionTimer timer(tracker,
                                       detail::ExploreTracker::Section::kAppend);
      for (std::size_t k = 0; k < cands.size(); ++k) {
        const detail::EdgeMeta& meta = cands[k].second;
        g.adj[id].push_back(Edge{targets[k], meta.label, meta.initiator,
                                 meta.responder, meta.changed,
                                 meta.changedMobile, meta.changedName});
      }
    }
    tracker.recordNodeExpanded(g.adj[id].size());
  }
  tracker.finish(frontier.size());
  return g;
}

ConfigGraph exploreConcrete(const Protocol& proto,
                            const std::vector<Configuration>& initials,
                            std::size_t maxNodes,
                            const InteractionGraph* topology,
                            ExploreObserver* observer,
                            std::uint64_t exploreId) {
  ExploreOptions options;
  options.maxNodes = maxNodes;
  options.topology = topology;
  options.observer = observer;
  options.exploreId = exploreId;
  return exploreConcrete(proto, initials, options);
}

ConfigGraph exploreCanonical(const Protocol& proto,
                             const std::vector<Configuration>& initials,
                             std::size_t maxNodes, ExploreObserver* observer,
                             std::uint64_t exploreId) {
  ExploreOptions options;
  options.maxNodes = maxNodes;
  options.observer = observer;
  options.exploreId = exploreId;
  return exploreCanonical(proto, initials, options);
}

}  // namespace ppn
