#include "analysis/explore.h"

#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "core/engine.h"

namespace ppn {

namespace {

/// Whether any agent's projected name differs between the two mobile
/// vectors (same length by construction).
bool namesDiffer(const Protocol& proto, const std::vector<StateId>& before,
                 const std::vector<StateId>& after) {
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (proto.nameOf(before[i]) != proto.nameOf(after[i])) return true;
  }
  return false;
}

class Interner {
 public:
  explicit Interner(ConfigGraph& g) : graph_(g) {}

  /// Returns (id, isNew).
  std::pair<std::uint32_t, bool> intern(const Configuration& c) {
    const auto [it, inserted] =
        ids_.emplace(c, static_cast<std::uint32_t>(graph_.configs.size()));
    if (inserted) {
      graph_.configs.push_back(c);
      graph_.adj.emplace_back();
    }
    return {it->second, inserted};
  }

 private:
  ConfigGraph& graph_;
  std::unordered_map<Configuration, std::uint32_t, ConfigurationHash> ids_;
};

}  // namespace

ConfigGraph exploreConcrete(const Protocol& proto,
                            const std::vector<Configuration>& initials,
                            std::size_t maxNodes,
                            const InteractionGraph* topology) {
  if (initials.empty()) {
    throw std::invalid_argument("exploreConcrete: no initial configurations");
  }
  ConfigGraph g;
  const std::uint32_t n = initials.front().numMobile();
  const std::uint32_t m = n + (proto.hasLeader() ? 1u : 0u);
  g.numParticipants = m;
  if (topology != nullptr && topology->numParticipants() != m) {
    throw std::invalid_argument(
        "exploreConcrete: topology participant count mismatch");
  }

  Interner interner(g);
  std::deque<std::uint32_t> frontier;
  for (const auto& c : initials) {
    if (c.numMobile() != n) {
      throw std::invalid_argument("exploreConcrete: mixed population sizes");
    }
    const auto [id, isNew] = interner.intern(c);
    if (isNew) frontier.push_back(id);
  }

  while (!frontier.empty()) {
    if (g.size() > maxNodes) {
      g.truncated = true;
      break;
    }
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    // Copy: interning may reallocate configs while we expand.
    const Configuration current = g.configs[id];

    auto addEdge = [&](const Configuration& next, PairLabel label,
                       std::uint32_t initiator, std::uint32_t responder,
                       bool changedMobile) {
      const bool changed = !(next == current);
      const bool changedName =
          changedMobile && namesDiffer(proto, current.mobile, next.mobile);
      const auto [to, isNew] = interner.intern(next);
      if (isNew) frontier.push_back(to);
      g.adj[id].push_back(Edge{to, label, static_cast<std::uint16_t>(initiator),
                               static_cast<std::uint16_t>(responder), changed,
                               changedMobile, changedName});
    };

    for (std::uint32_t i = 0; i < m; ++i) {
      for (std::uint32_t j = i + 1; j < m; ++j) {
        if (topology != nullptr && !topology->hasEdge(i, j)) continue;
        const PairLabel label = pairLabel(i, j, m);
        // Orientation 1: i initiates.
        Configuration next = current;
        applyInteraction(proto, next, Interaction{i, j});
        const bool mobileChanged1 = next.mobile != current.mobile;
        addEdge(next, label, i, j, mobileChanged1);
        // Orientation 2: j initiates (distinct only for asymmetric
        // mobile-mobile rules; leader interactions are orientation-free).
        const bool involvesLeader = proto.hasLeader() && j == m - 1;
        if (!involvesLeader) {
          Configuration next2 = current;
          applyInteraction(proto, next2, Interaction{j, i});
          if (!(next2 == next)) {
            addEdge(next2, label, j, i, next2.mobile != current.mobile);
          }
        }
      }
    }
  }
  return g;
}

ConfigGraph exploreCanonical(const Protocol& proto,
                             const std::vector<Configuration>& initials,
                             std::size_t maxNodes) {
  if (initials.empty()) {
    throw std::invalid_argument("exploreCanonical: no initial configurations");
  }
  ConfigGraph g;
  const std::uint32_t n = initials.front().numMobile();
  g.numParticipants = n + (proto.hasLeader() ? 1u : 0u);

  Interner interner(g);
  std::deque<std::uint32_t> frontier;
  for (const auto& c : initials) {
    if (c.numMobile() != n) {
      throw std::invalid_argument("exploreCanonical: mixed population sizes");
    }
    const auto [id, isNew] = interner.intern(c.canonicalized());
    if (isNew) frontier.push_back(id);
  }

  while (!frontier.empty()) {
    if (g.size() > maxNodes) {
      g.truncated = true;
      break;
    }
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    const Configuration current = g.configs[id];

    auto addEdge = [&](Configuration next, bool changedMobile) {
      const bool changedName =
          changedMobile && namesDiffer(proto, current.mobile, next.mobile);
      next = next.canonicalized();
      const bool changed = changedMobile || !(next == current) ||
                           next.leader != current.leader;
      if (!changed) return;  // canonical graphs omit null edges
      const auto [to, isNew] = interner.intern(next);
      if (isNew) frontier.push_back(to);
      g.adj[id].push_back(Edge{to, 0xffff, 0, 0, true, changedMobile,
                               changedName});
    };

    // Mobile-mobile interactions: pick representative agent indices for each
    // present state pair. The canonical form is sorted, so equal states are
    // adjacent; scanning index pairs over *distinct positions* covers every
    // state pair including homonym pairs, with duplicates deduplicated by
    // interning. N is tiny in checker workloads, so the O(N^2) scan is fine.
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) {
        // Skip repeats of the same (state_i, state_j) combination.
        if (i > 0 && current.mobile[i - 1] == current.mobile[i]) continue;
        if (j > i + 1 && current.mobile[j - 1] == current.mobile[j]) continue;
        Configuration next = current;
        applyInteraction(proto, next, Interaction{i, j});
        addEdge(next, next.mobile != current.mobile);
        Configuration next2 = current;
        applyInteraction(proto, next2, Interaction{j, i});
        addEdge(next2, next2.mobile != current.mobile);
      }
    }
    if (proto.hasLeader()) {
      for (std::uint32_t i = 0; i < n; ++i) {
        if (i > 0 && current.mobile[i - 1] == current.mobile[i]) continue;
        Configuration next = current;
        applyInteraction(proto, next, Interaction{n, i});
        addEdge(next, next.mobile != current.mobile);
      }
    }
  }
  return g;
}

}  // namespace ppn
