// The paper's Table 1 ("Synthesis of the relevant propositions and theorems
// establishing the feasibility of naming and the necessary (optimal) state
// space, under different model parameters") as a library of independently
// executable cells.
//
// bench/table1_feasibility.cpp used to inline the eight cell checks; they
// live here so the campaign orchestration subsystem (src/campaign/) can run
// each cell as its own work unit on a shard process and rebuild the exact
// table1_feasibility JSON document at merge time. Each cell is addressed by
// a stable index in [0, table1CellCount()); index order IS the table's row
// order, and a cell's verdict depends only on (index, p) — never on which
// process, shard, or thread count executed it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/explore.h"

namespace ppn {

class ExploreObserver;  // obs/explore_observer.h

/// Tri-state check outcome: a truncated exploration decides NOTHING — the
/// missing part of the configuration graph may hold either a violation or
/// the last piece of the proof.
enum class Table1Check { kPass, kFail, kUnknown };

/// Conjunction over sub-checks: any failure is conclusive (one real
/// counterexample sinks the claim), otherwise any unknown taints the cell.
Table1Check operator&(Table1Check a, Table1Check b);

/// "pass" | "fail" | "unknown" — the JSON verdict vocabulary.
const char* table1CheckName(Table1Check c);

/// One checked Table 1 row, ready for rendering / JSON serialization.
struct Table1CellResult {
  std::string cell;       ///< which Table 1 cell (model parameters)
  std::string claim;      ///< the paper's claim for that cell
  std::string mechanism;  ///< how the harness checked it
  std::string states;     ///< claimed optimal state count ("P", "P+1", "-")
  Table1Check verdict = Table1Check::kUnknown;
};

struct Table1Options {
  /// Worker threads for checker explorations and exhaustive searches
  /// (0 = hardware concurrency). Verdicts are bit-identical for any value.
  std::uint32_t threads = 1;
  /// Byte budget for every exploration this cell performs (ExploreOptions.
  /// maxBytes; 0 disables). Budget-truncated checks report kUnknown.
  std::uint64_t maxBytes = 0;
  /// Telemetry probe for explore/search events (not owned; may be null).
  ExploreObserver* observer = nullptr;
  /// Event-id bases for this cell's explorations and searches. Callers
  /// running several cells into ONE observer must give each cell a disjoint
  /// range (table1_feasibility uses index * kTable1IdStride) — ids are
  /// telemetry labels only and never affect verdicts.
  std::uint64_t exploreIdBase = 0;
  std::uint64_t searchIdBase = 256;
};

/// Number of checked cells (rows) in the reproduction. Indices are stable:
/// appending a new cell never renumbers existing ones.
std::uint32_t table1CellCount();

/// Runs one cell's checks at bound `p` (2..4; throws std::invalid_argument
/// outside that range or for an out-of-range index).
Table1CellResult runTable1Cell(std::uint32_t index, StateId p,
                               const Table1Options& options);

/// Id-range stride per cell: a cell performs far fewer than this many
/// explorations/searches, so `index * kTable1IdStride` bases never collide.
inline constexpr std::uint64_t kTable1IdStride = 32;

/// True when every cell passed (the bench's process exit criterion).
bool table1AllPass(const std::vector<Table1CellResult>& cells);

/// The table1_feasibility JSON document (experiment/p/cells/overall) for
/// `cells` in index order — shared by the bench and the campaign merge pass
/// so a merged distributed run is byte-identical to the in-process one.
std::string table1Json(StateId p, const std::vector<Table1CellResult>& cells);

}  // namespace ppn
