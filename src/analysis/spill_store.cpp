#include "analysis/spill_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "analysis/compressed_graph.h"
#include "obs/memory.h"

namespace ppn::detail {
namespace {

constexpr char kMagic[8] = {'P', 'P', 'N', 'S', 'P', 'I', 'L', '1'};
constexpr std::uint64_t kHeaderBytes = 24;
constexpr std::uint64_t kRecordBytes = 12;
// Merge/flush I/O granularity, in records.
constexpr std::uint64_t kChunkRecords = 4096;

// Process-wide counter so concurrent explorations in one process never
// collide on run file names.
std::atomic<std::uint64_t> gRunCounter{0};

const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void writeAll(int fd, const void* bytes, std::uint64_t n, std::uint64_t at) {
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(at));
    if (w <= 0) throw std::runtime_error("spill run write failed");
    p += w;
    at += static_cast<std::uint64_t>(w);
    n -= static_cast<std::uint64_t>(w);
  }
}

void readAll(int fd, void* bytes, std::uint64_t n, std::uint64_t at) {
  auto* p = static_cast<std::uint8_t*>(bytes);
  while (n > 0) {
    const ssize_t r = ::pread(fd, p, n, static_cast<off_t>(at));
    if (r <= 0) throw std::runtime_error("spill run read failed");
    p += r;
    at += static_cast<std::uint64_t>(r);
    n -= static_cast<std::uint64_t>(r);
  }
}

void packRecord(std::uint8_t* out, const SpillEntry& e) {
  std::memcpy(out, &e.fp, 8);
  std::memcpy(out + 8, &e.id, 4);
}

SpillEntry unpackRecord(const std::uint8_t* in) {
  SpillEntry e;
  std::memcpy(&e.fp, in, 8);
  std::memcpy(&e.id, in + 8, 4);
  return e;
}

void writeHeader(int fd, std::uint64_t entryCount, std::uint32_t crc) {
  std::uint8_t header[kHeaderBytes];
  std::memcpy(header, kMagic, 8);
  std::memcpy(header + 8, &entryCount, 8);
  std::memcpy(header + 16, &crc, 4);
  std::memset(header + 20, 0, 4);
  writeAll(fd, header, kHeaderBytes, 0);
}

}  // namespace

std::uint32_t crc32(const void* bytes, std::uint64_t n, std::uint32_t seed) {
  const auto& table = crcTable();
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::uint64_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

SpillRunSet::~SpillRunSet() {
  for (Run& run : runs_) closeRun(run);
}

std::uint64_t SpillRunSet::diskBytes() const {
  std::uint64_t total = 0;
  for (const Run& run : runs_) {
    total += kHeaderBytes + run.entryCount * kRecordBytes;
  }
  return total;
}

std::string SpillRunSet::runPath() {
  if (dir_.empty()) {
    dir_ = std::filesystem::temp_directory_path().string();
  } else {
    std::filesystem::create_directories(dir_);
  }
  const std::uint64_t seq = gRunCounter.fetch_add(1);
  return dir_ + "/ppn-spill-" + std::to_string(::getpid()) + "-" +
         std::to_string(seq) + ".run";
}

void SpillRunSet::closeRun(Run& run) {
  if (run.fd >= 0) {
    ::close(run.fd);
    ::unlink(run.path.c_str());
    run.fd = -1;
  }
}

void SpillRunSet::writeRun(const std::vector<SpillEntry>& entries) {
  Run run;
  run.path = runPath();
  run.fd = ::open(run.path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (run.fd < 0) throw std::runtime_error("cannot create spill run " + run.path);
  run.entryCount = entries.size();
  run.sampleFps.reserve((entries.size() + kProbeStride - 1) / kProbeStride);

  std::vector<std::uint8_t> payload(entries.size() * kRecordBytes);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    packRecord(payload.data() + i * kRecordBytes, entries[i]);
    if (i % kProbeStride == 0) run.sampleFps.push_back(entries[i].fp);
  }
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  writeHeader(run.fd, run.entryCount, crc);
  writeAll(run.fd, payload.data(), payload.size(), kHeaderBytes);
  runs_.push_back(std::move(run));
}

void SpillRunSet::compact() {
  if (runs_.size() < 2) return;

  // Streaming k-way merge: one bounded read buffer per input run, CRC
  // recomputed over each input as it streams and checked against its header.
  struct Stream {
    const Run* run;
    std::uint64_t next = 0;  // next record index
    std::uint64_t bufStart = 0;
    std::uint64_t bufCount = 0;
    std::uint32_t crc = 0;
    std::vector<std::uint8_t> buf;
    SpillEntry head;
  };
  auto fill = [](Stream& s) {
    if (s.next >= s.run->entryCount) return false;
    if (s.next >= s.bufStart + s.bufCount) {
      s.bufStart = s.next;
      s.bufCount = std::min(kChunkRecords, s.run->entryCount - s.next);
      s.buf.resize(s.bufCount * kRecordBytes);
      readAll(s.run->fd, s.buf.data(), s.buf.size(),
              kHeaderBytes + s.bufStart * kRecordBytes);
      // CRC streams over the payload exactly once, in order.
      s.crc = crc32(s.buf.data(), s.buf.size(), s.crc);
    }
    s.head = unpackRecord(s.buf.data() + (s.next - s.bufStart) * kRecordBytes);
    return true;
  };

  std::vector<Stream> streams;
  streams.reserve(runs_.size());
  std::uint64_t total = 0;
  for (const Run& run : runs_) {
    Stream s;
    s.run = &run;
    total += run.entryCount;
    streams.push_back(std::move(s));
  }

  Run merged;
  merged.path = runPath();
  merged.fd = ::open(merged.path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (merged.fd < 0) {
    throw std::runtime_error("cannot create spill run " + merged.path);
  }
  merged.entryCount = total;
  merged.sampleFps.reserve((total + kProbeStride - 1) / kProbeStride);

  std::vector<std::uint8_t> outBuf;
  outBuf.reserve(kChunkRecords * kRecordBytes);
  std::uint64_t written = 0;
  std::uint64_t outAt = kHeaderBytes;
  std::uint32_t outCrc = 0;
  auto flushOut = [&] {
    if (outBuf.empty()) return;
    outCrc = crc32(outBuf.data(), outBuf.size(), outCrc);
    writeAll(merged.fd, outBuf.data(), outBuf.size(), outAt);
    outAt += outBuf.size();
    outBuf.clear();
  };

  // Prime the streams, dropping exhausted (empty) runs.
  std::vector<Stream*> live;
  for (Stream& s : streams) {
    if (fill(s)) live.push_back(&s);
  }
  while (!live.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < live.size(); ++i) {
      const SpillEntry& a = live[i]->head;
      const SpillEntry& b = live[best]->head;
      if (a.fp < b.fp || (a.fp == b.fp && a.id < b.id)) best = i;
    }
    Stream& s = *live[best];
    if (written % kProbeStride == 0) merged.sampleFps.push_back(s.head.fp);
    outBuf.resize(outBuf.size() + kRecordBytes);
    packRecord(outBuf.data() + outBuf.size() - kRecordBytes, s.head);
    ++written;
    if (outBuf.size() >= kChunkRecords * kRecordBytes) flushOut();
    ++s.next;
    if (!fill(s)) live.erase(live.begin() + static_cast<std::ptrdiff_t>(best));
  }
  flushOut();
  writeHeader(merged.fd, merged.entryCount, outCrc);

  // Verify every fully-streamed input against its stored CRC before
  // dropping it: a corrupt run must fail loudly, not dedup wrongly.
  for (Stream& s : streams) {
    std::uint32_t stored = 0;
    std::uint8_t crcBytes[4];
    readAll(s.run->fd, crcBytes, 4, 16);
    std::memcpy(&stored, crcBytes, 4);
    if (stored != s.crc) {
      ::close(merged.fd);
      ::unlink(merged.path.c_str());
      throw std::runtime_error("spill run CRC mismatch: " + s.run->path);
    }
  }
  for (Run& run : runs_) closeRun(run);
  runs_.clear();
  runs_.push_back(std::move(merged));
}

void SpillRunSet::candidates(std::uint64_t fp,
                             std::vector<std::uint32_t>& out) const {
  out.clear();
  std::uint8_t buf[kProbeStride * kRecordBytes];
  for (const Run& run : runs_) {
    if (run.entryCount == 0 || run.sampleFps.empty()) continue;
    if (fp < run.sampleFps.front()) continue;
    // Start one block before the first sample >= fp: a run of equal
    // fingerprints can begin mid-block and span many blocks, so scan
    // forward until a record exceeds fp or the run ends.
    const auto it = std::lower_bound(run.sampleFps.begin(),
                                     run.sampleFps.end(), fp);
    const std::uint64_t block =
        it == run.sampleFps.begin()
            ? 0
            : static_cast<std::uint64_t>(it - run.sampleFps.begin()) - 1;
    std::uint64_t rec = block * kProbeStride;
    bool done = false;
    while (!done && rec < run.entryCount) {
      const std::uint64_t n = std::min<std::uint64_t>(kProbeStride,
                                                      run.entryCount - rec);
      readAll(run.fd, buf, n * kRecordBytes, kHeaderBytes + rec * kRecordBytes);
      for (std::uint64_t i = 0; i < n; ++i) {
        const SpillEntry e = unpackRecord(buf + i * kRecordBytes);
        if (e.fp > fp) {
          done = true;
          break;
        }
        if (e.fp == fp) out.push_back(e.id);
      }
      rec += n;
    }
  }
}

std::optional<SpillPolicy::Action> SpillPolicy::maybeFlush(
    std::uint32_t interned) {
  if (threshold_ == 0) return std::nullopt;
  const std::uint32_t ram = interned - flushed_;
  if (ram == 0) return std::nullopt;
  if (FpTable::modeledBytesFor(ram) <= threshold_) return std::nullopt;
  Action action;
  action.from = flushed_;
  action.to = interned;
  runEntryCounts_.push_back(ram);
  flushed_ = interned;
  if (runEntryCounts_.size() > kMaxRuns) {
    action.compact = true;
    std::uint64_t total = 0;
    for (const std::uint64_t c : runEntryCounts_) total += c;
    runEntryCounts_.assign(1, total);
  }
  return action;
}

std::uint64_t SpillPolicy::dedupModelBytes(std::uint32_t interned) const {
  std::uint64_t total = FpTable::modeledBytesFor(interned - flushed_);
  for (const std::uint64_t c : runEntryCounts_) {
    const std::uint64_t samples = (c + SpillRunSet::kProbeStride - 1) /
                                  SpillRunSet::kProbeStride;
    total += paddedAllocBytes(samples * 8);
  }
  return total;
}

std::uint64_t SpillPolicy::spillDiskBytes() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : runEntryCounts_) total += 24 + c * 12;
  return total;
}

}  // namespace ppn::detail
