// Exact expected convergence time under the uniform random scheduler.
//
// The uniform random scheduler induces a discrete-time Markov chain on the
// canonical configuration space: from a configuration with state counts
// c(s), an ordered agent pair realizes the rule (s, t) with probability
// proportional to c(s)c(t) (c(s)(c(s)-1) for homonym pairs, 2c(s) for
// leader pairs). The expected number of interactions to reach a *silent*
// configuration solves the linear system (I - Q)x = 1 over the transient
// states — computed here by dense Gaussian elimination, giving exact
// (up to floating point) values that validate the simulator's measured
// means and quantify convergence cost without sampling noise.
//
// If some reachable configuration cannot reach the silent set, the expected
// time from any state that can reach it is infinite with positive
// probability — reported as diverges = true.
#pragma once

#include <string>

#include "core/configuration.h"
#include "core/protocol.h"

namespace ppn {

struct HittingTime {
  /// False when the state space exceeded maxStates (no result).
  bool computed = false;
  /// True when a reachable configuration cannot reach silence (the expected
  /// time is infinite / convergence has probability < 1... under the
  /// uniform scheduler a.s. convergence fails).
  bool diverges = false;
  /// Expected interactions from `start` to the first silent configuration.
  double expectedInteractions = 0.0;
  std::size_t numStates = 0;
  std::string reason;
};

/// Exact expected convergence (to silence) from `start` under the uniform
/// random scheduler. Dense solve (O(states^3)): keep the reachable canonical
/// space small; the default cap ~2048 states solves in about a second.
HittingTime expectedConvergenceTime(const Protocol& proto,
                                    const Configuration& start,
                                    std::size_t maxStates = 2048);

}  // namespace ppn
