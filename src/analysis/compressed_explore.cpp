// Serial BFS over the compressed graph representation (DESIGN decision 19).
//
// Same exploration as explore.cpp's explicit loops — identical candidate
// enumeration, identical intern order, identical truncation discipline — but
// interning goes through the two-tier fingerprint table (RAM FpTable +
// sorted-run spill files) and the graph lands in the delta-coded
// ConfigStore / EdgeStreamStore instead of materialized vectors. This loop
// is the reference the parallel compressed engine must match bit-for-bit.
#include <algorithm>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>

#include "analysis/explore.h"
#include "analysis/explore_impl.h"
#include "analysis/packed_config.h"
#include "analysis/spill_store.h"

namespace ppn::detail {

void flushTableToRun(FpTable& table, SpillRunSet& runs,
                     const SpillPolicy::Action& action) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> drained;
  table.drain(drained);
  std::sort(drained.begin(), drained.end());
  std::vector<SpillEntry> entries;
  entries.reserve(drained.size());
  for (const auto& [fp, id] : drained) entries.push_back(SpillEntry{fp, id});
  runs.writeRun(entries);
  if (action.compact) runs.compact();
}

ConfigGraph exploreSerialCompressed(const Protocol& proto,
                                    const std::vector<Configuration>& initials,
                                    const ExploreOptions& options,
                                    bool canonical) {
  ConfigGraph g;
  const std::uint32_t n = initials.front().numMobile();
  const std::uint32_t m = n + (proto.hasLeader() ? 1u : 0u);
  g.numParticipants = m;
  const PhaseScope phase(options.observer, options.exploreId, "explore");
  const PackedCodec codec(canonical ? PackedCodec::Form::kCanonical
                                    : PackedCodec::Form::kConcrete,
                          proto, n);
  g.packed.init(codec, /*concrete=*/!canonical);
  ConfigStore& store = g.packed.configStore();
  EdgeStreamStore& estore = g.packed.edgeStore();
  ExploreTracker tracker(options.observer, options.exploreId, g, codec, n);

  FpTable table;
  SpillPolicy policy(options.spillBytes);
  SpillRunSet runs(options.spillDir);
  const std::uint32_t width = codec.packedBytes();
  std::vector<std::uint8_t> verifyBuf(width);
  std::vector<std::uint32_t> runCands;

  // Probe order: RAM table, then spill runs (they cover disjoint id ranges).
  // A fingerprint match is confirmed by decoding the candidate's bytes.
  const auto matches = [&](std::uint32_t candId, const PackedConfig& key) {
    store.decode(candId, verifyBuf.data());
    return std::memcmp(verifyBuf.data(), key.data(), width) == 0;
  };
  const auto intern = [&](const PackedConfig& key) {
    if (const auto hit = table.find(
            key.hash(), [&](std::uint32_t id) { return matches(id, key); })) {
      return std::pair<std::uint32_t, bool>{*hit, false};
    }
    if (runs.runCount() > 0) {
      runs.candidates(key.hash(), runCands);
      for (const std::uint32_t id : runCands) {
        if (matches(id, key)) return std::pair<std::uint32_t, bool>{id, false};
      }
    }
    const std::uint32_t id = store.count();
    store.append(key.data());
    table.insert(key.hash(), id);
    return std::pair<std::uint32_t, bool>{id, true};
  };
  const auto syncComponents = [&] {
    tracker.setCompressedComponents(store.modeledBytes(), estore.modeledBytes(),
                                    policy.dedupModelBytes(store.count()));
    tracker.setSpillState(policy.spillDiskBytes(), policy.runCount());
  };

  std::deque<std::uint32_t> frontier;
  for (const auto& c : initials) {
    const auto [id, isNew] = intern(codec.pack(canonical ? c.canonicalized() : c));
    if (isNew) frontier.push_back(id);
  }
  syncComponents();

  ConfigStore::Cursor cursor(store);
  std::vector<std::pair<Configuration, EdgeMeta>> cands;
  std::vector<RawEdge> rawEdges;
  std::vector<std::uint8_t> body;
  while (!frontier.empty()) {
    // Spill maintenance precedes the budget check: flushing is exactly what
    // lets a tight maxBytes budget complete instead of truncating.
    if (const auto action = policy.maybeFlush(store.count())) {
      const SectionTimer timer(tracker, ExploreTracker::Section::kIo);
      flushTableToRun(table, runs, *action);
    }
    syncComponents();
    tracker.checkpoint(frontier.size());
    const bool overNodes = g.size() > options.maxNodes;
    const bool overBytes =
        options.maxBytes != 0 && tracker.totalBytes() > options.maxBytes;
    if (overNodes || overBytes) {
      g.truncated = true;
      g.truncatedByBudget = overBytes && !overNodes;
      tracker.recordTruncation(options.maxNodes, options.maxBytes,
                               g.truncatedByBudget, frontier);
      break;
    }
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    tracker.recordExpansion(frontier.size());
    // Sequential decode: BFS pops ascend by one, so the cursor applies a
    // single delta per pop.
    const Configuration current = codec.unpackBytes(cursor.at(id));

    {
      const SectionTimer timer(tracker, ExploreTracker::Section::kExpand);
      cands.clear();
      if (canonical) {
        forEachCanonicalSuccessor(
            proto, current, n,
            [&](Configuration&& next, const EdgeMeta& meta) {
              cands.emplace_back(std::move(next), meta);
            });
      } else {
        forEachConcreteSuccessor(
            proto, current, m, options.topology,
            [&](Configuration&& next, const EdgeMeta& meta) {
              cands.emplace_back(std::move(next), meta);
            });
      }
    }
    rawEdges.clear();
    {
      const SectionTimer timer(tracker, ExploreTracker::Section::kDedup);
      for (auto& [next, meta] : cands) {
        const auto [to, isNew] = intern(codec.pack(next));
        if (isNew) frontier.push_back(to);
        tracker.recordEdge(!isNew);
        RawEdge raw;
        raw.to = to;
        raw.flags = static_cast<std::uint8_t>((meta.changed ? 1 : 0) |
                                              (meta.changedMobile ? 2 : 0) |
                                              (meta.changedName ? 4 : 0));
        raw.initiator = meta.initiator;
        raw.responder = meta.responder;
        rawEdges.push_back(raw);
      }
    }
    {
      const SectionTimer timer(tracker, ExploreTracker::Section::kAppend);
      EdgeStreamStore::encodeBody(
          body, id, static_cast<std::uint32_t>(rawEdges.size()), !canonical,
          [&](std::uint32_t k) { return rawEdges[k]; });
      estore.appendStream(id, body);
    }
  }
  syncComponents();
  tracker.finish(frontier.size());
  return g;
}

}  // namespace ppn::detail
