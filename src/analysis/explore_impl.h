// Internal machinery shared by the serial (explore.cpp) and parallel
// (parallel_explore.cpp) exploration engines. Not part of the public API.
//
// The two engines must produce bit-identical ConfigGraphs, so everything
// that defines the output — successor enumeration order, edge metadata,
// truncation semantics — lives here exactly once. The enumerators replicate
// the historical serial loops verbatim: orientation 1 before orientation 2,
// orientation 2 suppressed for leader pairs and for coinciding outcomes,
// canonical null edges omitted, canonical duplicate (state_i, state_j)
// combinations skipped via the sortedness of the canonical form.
#pragma once

#include <chrono>
#include <thread>
#include <utility>

#include "analysis/explore.h"
#include "analysis/packed_config.h"
#include "analysis/spill_store.h"
#include "core/engine.h"
#include "obs/memory.h"

namespace ppn::detail {

/// Everything an Edge carries except the target id (which interning decides).
struct EdgeMeta {
  PairLabel label = 0xffff;
  std::uint16_t initiator = 0;
  std::uint16_t responder = 0;
  bool changed = false;
  bool changedMobile = false;
  bool changedName = false;
};

/// Whether any agent's projected name differs between the two mobile
/// vectors (same length by construction).
inline bool namesDiffer(const Protocol& proto, const std::vector<StateId>& before,
                        const std::vector<StateId>& after) {
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (proto.nameOf(before[i]) != proto.nameOf(after[i])) return true;
  }
  return false;
}

/// Enumerates the concrete successors of `current` in the canonical serial
/// order, calling fn(Configuration&&, const EdgeMeta&) once per edge
/// (including null self-loops — weak-fairness coverage needs them).
template <class Fn>
void forEachConcreteSuccessor(const Protocol& proto, const Configuration& current,
                              std::uint32_t numParticipants,
                              const InteractionGraph* topology, Fn&& fn) {
  const std::uint32_t m = numParticipants;
  const bool hasLeader = proto.hasLeader();
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = i + 1; j < m; ++j) {
      if (topology != nullptr && !topology->hasEdge(i, j)) continue;
      const PairLabel label = pairLabel(i, j, m);
      // Orientation 1: i initiates.
      Configuration next = current;
      applyInteraction(proto, next, Interaction{i, j});
      const bool changed1 = !(next == current);
      const bool mobile1 = next.mobile != current.mobile;
      const bool name1 =
          mobile1 && namesDiffer(proto, current.mobile, next.mobile);
      const EdgeMeta meta1{label, static_cast<std::uint16_t>(i),
                           static_cast<std::uint16_t>(j), changed1, mobile1,
                           name1};
      // Orientation 2: j initiates (distinct only for asymmetric
      // mobile-mobile rules; leader interactions are orientation-free).
      const bool involvesLeader = hasLeader && j == m - 1;
      if (involvesLeader) {
        fn(std::move(next), meta1);
        continue;
      }
      Configuration next2 = current;
      applyInteraction(proto, next2, Interaction{j, i});
      const bool distinct = !(next2 == next);
      fn(std::move(next), meta1);
      if (distinct) {
        const bool mobile2 = next2.mobile != current.mobile;
        const bool name2 =
            mobile2 && namesDiffer(proto, current.mobile, next2.mobile);
        fn(std::move(next2),
           EdgeMeta{label, static_cast<std::uint16_t>(j),
                    static_cast<std::uint16_t>(i), !(next2 == current), mobile2,
                    name2});
      }
    }
  }
}

/// Enumerates the canonical successors of the canonical configuration
/// `current` in the canonical serial order. Null transitions are omitted;
/// emitted configurations are already canonicalized.
template <class Fn>
void forEachCanonicalSuccessor(const Protocol& proto, const Configuration& current,
                               std::uint32_t numMobile, Fn&& fn) {
  const std::uint32_t n = numMobile;
  auto emit = [&](Configuration next, bool changedMobile) {
    const bool changedName =
        changedMobile && namesDiffer(proto, current.mobile, next.mobile);
    next = next.canonicalized();
    const bool changed = changedMobile || !(next == current) ||
                         next.leader != current.leader;
    if (!changed) return;  // canonical graphs omit null edges
    fn(std::move(next),
       EdgeMeta{0xffff, 0, 0, true, changedMobile, changedName});
  };

  // Mobile-mobile interactions: pick representative agent indices for each
  // present state pair. The canonical form is sorted, so equal states are
  // adjacent; scanning index pairs over *distinct positions* covers every
  // state pair including homonym pairs, with duplicates deduplicated by
  // interning. N is tiny in checker workloads, so the O(N^2) scan is fine.
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      // Skip repeats of the same (state_i, state_j) combination.
      if (i > 0 && current.mobile[i - 1] == current.mobile[i]) continue;
      if (j > i + 1 && current.mobile[j - 1] == current.mobile[j]) continue;
      Configuration next = current;
      applyInteraction(proto, next, Interaction{i, j});
      const bool mobile1 = next.mobile != current.mobile;
      emit(std::move(next), mobile1);
      Configuration next2 = current;
      applyInteraction(proto, next2, Interaction{j, i});
      const bool mobile2 = next2.mobile != current.mobile;
      emit(std::move(next2), mobile2);
    }
  }
  if (proto.hasLeader()) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i > 0 && current.mobile[i - 1] == current.mobile[i]) continue;
      Configuration next = current;
      applyInteraction(proto, next, Interaction{n, i});
      const bool mobileChanged = next.mobile != current.mobile;
      emit(std::move(next), mobileChanged);
    }
  }
}

/// Progress + memory bookkeeping for one exploration. Event emission is a
/// single-branch no-op when no observer is attached, so the unobserved BFS
/// stays bit-identical to the pre-telemetry loop. The MemoryLedger updates
/// are unconditional — the byte budget (ExploreOptions.maxBytes) consults
/// them whether or not anyone is listening — but they are a handful of
/// arithmetic ops per interned node.
///
/// Byte accounting follows the deterministic malloc-chunk model of DESIGN.md
/// decision 18: every charge is a pure function of exploration CONTENT (node
/// count, per-node edge counts, the codec's packed width), never of engine
/// internals, so serial and parallel runs agree bit-for-bit and the parallel
/// cut replay can recompute any prefix of the serial charge sequence in
/// closed form. ExploreProgressEvent.bytesEstimate reports the ledger total.
class ExploreTracker {
 public:
  ExploreTracker(ExploreObserver* obs, std::uint64_t exploreId,
                 const ConfigGraph& g, const PackedCodec& codec,
                 std::uint32_t numMobile)
      : obs_(obs),
        exploreId_(exploreId),
        g_(&g),
        mobileHeapBytes_(
            paddedAllocBytes(std::uint64_t{numMobile} * sizeof(StateId))),
        dedupNodeBytes_(dedupEntryBytes()),
        codecSpillBytes_(codec.packedBytes() > PackedConfig::kInlineBytes
                             ? paddedAllocBytes(codec.packedBytes())
                             : 0) {
    if (obs_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  /// Modeled heap cost of one dedup-table entry: the unordered_map hash node
  /// (next pointer + cached hash + the PackedConfig/id pair) plus the slot
  /// the parallel engine's shard keeps per entry.
  static constexpr std::uint64_t dedupEntryBytes() {
    return paddedAllocBytes(
               2 * sizeof(void*) +
               sizeof(std::pair<const PackedConfig, std::uint32_t>)) +
           sizeof(std::uint32_t);
  }

  void recordEdge(bool dedupHit) {
    if (obs_ == nullptr) return;
    ++edges_;
    if (dedupHit) ++dedupHits_;
  }

  /// One configuration was interned (serial engine; parallel rebasing goes
  /// through setInterned). Charges the node-dependent components.
  void recordInterned() { setInterned(nodes_ + 1); }

  /// Rebases every node-derived component to `nodes` interned nodes. The
  /// per-entry costs are content-derived constants, so this equals the
  /// serial per-intern accrual at the same node count.
  void setInterned(std::uint64_t nodes) {
    nodes_ = nodes;
    ledger_.set(MemoryComponent::kConfigs,
                slotArrayBytes(nodes) + nodes * mobileHeapBytes_);
    ledger_.set(MemoryComponent::kDedup,
                paddedAllocBytes(grownCapacity(nodes) * 8) +
                    nodes * dedupNodeBytes_);
    ledger_.set(MemoryComponent::kCodec, nodes * codecSpillBytes_);
  }

  /// Parallel merge thread: rebase node-derived components from the ledgers
  /// the dedup shards accrued (folded in fixed shard order), plus the
  /// k-derived array terms. Dedup entries are 1:1 with interned nodes and
  /// every per-entry charge is a content-derived constant, so the result is
  /// bit-identical to the serial setInterned at the same node count.
  void applyShardFold(std::uint64_t nodes, const MemoryLedger& fold) {
    nodes_ = nodes;
    ledger_.set(MemoryComponent::kConfigs,
                slotArrayBytes(nodes) + nodes * mobileHeapBytes_);
    ledger_.set(MemoryComponent::kDedup,
                paddedAllocBytes(grownCapacity(nodes) * 8) +
                    fold.component(MemoryComponent::kDedup));
    ledger_.set(MemoryComponent::kCodec,
                fold.component(MemoryComponent::kCodec));
  }

  std::uint64_t codecSpillBytes() const { return codecSpillBytes_; }

  /// A node's expansion is complete: charge its edge vector's payload.
  void recordNodeExpanded(std::size_t edgeCount) {
    ledger_.add(MemoryComponent::kAdjacency,
                paddedAllocBytes(std::uint64_t{edgeCount} * sizeof(Edge)));
  }

  /// Top-of-loop bookkeeping: refresh the frontier component and fold the
  /// current totals into the high-water marks. The serial loop calls this
  /// once per pop; the parallel engine replays the identical sequence in its
  /// phase-3 cut walk (noteReplayState), so high-water marks are
  /// engine-invariant.
  void checkpoint(std::size_t frontierSize) {
    ledger_.set(MemoryComponent::kFrontier,
                std::uint64_t{frontierSize} * sizeof(std::uint32_t));
    ledger_.checkpoint();
  }

  /// Parallel phase-3 replay: fold one simulated top-of-loop state (total
  /// modeled bytes + frontier entries) into the high-water marks without
  /// touching the current component values.
  void noteReplayState(std::uint64_t totalBytes, std::uint64_t frontierEntries) {
    ledger_.noteTotalHighWater(totalBytes);
    ledger_.noteComponentHighWater(
        MemoryComponent::kFrontier,
        frontierEntries * sizeof(std::uint32_t));
  }

  /// Compressed-mode replay additionally folds the dedup component per step:
  /// unlike configs/adjacency it is NOT monotone (a spill flush shrinks it),
  /// so the final checkpoint cannot recover its peak.
  void noteReplayDedup(std::uint64_t dedupBytes) {
    ledger_.noteComponentHighWater(MemoryComponent::kDedup, dedupBytes);
  }

  /// Compressed-mode component sync: the stores' modeled bytes ARE the
  /// allocation-exact footprint (ByteBuf capacity == grownCapacity(size)),
  /// and kCodec is idle — compressed interning never retains a PackedConfig.
  void setCompressedComponents(std::uint64_t configsBytes,
                               std::uint64_t adjacencyBytes,
                               std::uint64_t dedupBytes) {
    ledger_.set(MemoryComponent::kConfigs, configsBytes);
    ledger_.set(MemoryComponent::kAdjacency, adjacencyBytes);
    ledger_.set(MemoryComponent::kDedup, dedupBytes);
    ledger_.set(MemoryComponent::kCodec, 0);
  }

  /// Current spill-tier state (compressed mode): on-DISK run bytes and live
  /// run count. Reported on memory samples, deliberately outside the ledger
  /// total — the ledger models RAM and disk is what spilling trades it for.
  void setSpillState(std::uint64_t diskBytes, std::uint64_t runCount) {
    spillDiskBytes_ = diskBytes;
    spillRuns_ = runCount;
  }

  /// Sections of the exploration loop timed for per-phase throughput
  /// reporting (ExploreProgressEvent expand/dedup/append/io fields).
  enum class Section { kExpand = 0, kDedup = 1, kAppend = 2, kIo = 3 };

  /// Whether section timing is worth measuring (an observer is listening).
  /// Wall-clock fields are exempt from the bit-identity contract, like
  /// nodesPerSec.
  bool timing() const { return obs_ != nullptr; }

  void addSectionSeconds(Section s, double seconds) {
    sectionSeconds_[static_cast<int>(s)] += seconds;
  }

  /// Node-derived modeled bytes at `k` interned nodes (configs + dedup +
  /// codec spill) — the closed form the parallel cut replay sums with its
  /// adjacency prefix and frontier term.
  std::uint64_t nodeDependentBytes(std::uint64_t k) const {
    return slotArrayBytes(k) + k * mobileHeapBytes_ +
           paddedAllocBytes(grownCapacity(k) * 8) + k * dedupNodeBytes_ +
           k * codecSpillBytes_;
  }

  std::uint64_t totalBytes() const { return ledger_.total(); }
  std::uint64_t adjacencyBytes() const {
    return ledger_.component(MemoryComponent::kAdjacency);
  }
  MemoryLedger& ledger() { return ledger_; }

  void recordExpansion(std::size_t frontierSize) {
    if (obs_ == nullptr) return;
    ++expanded_;
    if (expanded_ % kExploreProgressStride == 0) emit(frontierSize, false);
  }

  /// Bulk variant for the parallel engine (merge thread only): accounts one
  /// completed BFS level and emits at most one progress event when the level
  /// crossed a stride boundary.
  void recordLevel(std::uint64_t expandedNodes, std::uint64_t edges,
                   std::uint64_t dedupHits, std::size_t frontierSize) {
    if (obs_ == nullptr) return;
    expanded_ += expandedNodes;
    edges_ += edges;
    dedupHits_ += dedupHits;
    if (expanded_ / kExploreProgressStride > emittedStrides_) {
      emittedStrides_ = expanded_ / kExploreProgressStride;
      emit(frontierSize, false);
    }
  }

  template <class Container>
  void recordTruncation(std::size_t maxNodes, std::uint64_t maxBytes,
                        bool byBudget, const Container& frontier) {
    if (obs_ == nullptr) return;
    ExploreTruncatedEvent e;
    e.exploreId = exploreId_;
    e.nodes = g_->size();
    e.maxNodes = maxNodes;
    e.frontier.assign(frontier.begin(), frontier.end());
    e.maxBytes = maxBytes;
    e.bytesAtCut = ledger_.total();
    e.byBudget = byBudget;
    obs_->onTruncated(e);
  }

  void finish(std::size_t frontierSize) {
    if (obs_ == nullptr) return;
    emit(frontierSize, true);
  }

 private:
  /// Modeled allocations backing the graph's slot vectors at `k` nodes: the
  /// configs array and the adjacency vector-header array, both grown
  /// geometrically.
  static std::uint64_t slotArrayBytes(std::uint64_t k) {
    return paddedAllocBytes(grownCapacity(k) * sizeof(Configuration)) +
           paddedAllocBytes(grownCapacity(k) * sizeof(std::vector<Edge>));
  }

  void emit(std::size_t frontierSize, bool done) {
    // Fold the at-emission state so high_water >= total holds on every
    // sample (the serial loop's last checkpoint predates the final node's
    // adjacency charge).
    checkpoint(frontierSize);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    ExploreProgressEvent e;
    e.exploreId = exploreId_;
    e.nodes = g_->size();
    e.frontier = frontierSize;
    e.edges = edges_;
    e.dedupHits = dedupHits_;
    e.bytesEstimate = ledger_.total();
    e.nodesPerSec =
        elapsed > 0.0 ? static_cast<double>(expanded_) / elapsed : 0.0;
    e.elapsedMillis = elapsed * 1e3;
    const double expandSec = sectionSeconds_[0];
    const double dedupSec = sectionSeconds_[1];
    e.expandMillis = expandSec * 1e3;
    e.dedupMillis = dedupSec * 1e3;
    e.appendMillis = sectionSeconds_[2] * 1e3;
    e.ioMillis = sectionSeconds_[3] * 1e3;
    e.expandNodesPerSec =
        expandSec > 0.0 ? static_cast<double>(expanded_) / expandSec : 0.0;
    e.dedupNodesPerSec =
        dedupSec > 0.0 ? static_cast<double>(expanded_) / dedupSec : 0.0;
    e.done = done;
    obs_->onExploreProgress(e);
    emitMemorySample(elapsed * 1e3, done);
  }

  void emitMemorySample(double elapsedMillis, bool done);

  ExploreObserver* obs_;
  std::uint64_t exploreId_;
  const ConfigGraph* g_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t mobileHeapBytes_ = 0;
  std::uint64_t dedupNodeBytes_ = 0;
  std::uint64_t codecSpillBytes_ = 0;
  std::uint64_t nodes_ = 0;
  MemoryLedger ledger_;
  std::uint64_t expanded_ = 0;
  std::uint64_t edges_ = 0;
  std::uint64_t dedupHits_ = 0;
  std::uint64_t emittedStrides_ = 0;
  std::uint64_t spillDiskBytes_ = 0;
  std::uint64_t spillRuns_ = 0;
  double sectionSeconds_[4] = {0.0, 0.0, 0.0, 0.0};
};

/// RAII section timer; a no-op (no clock read) when nobody observes.
class SectionTimer {
 public:
  SectionTimer(ExploreTracker& tracker, ExploreTracker::Section section)
      : tracker_(tracker), section_(section) {
    if (tracker_.timing()) start_ = std::chrono::steady_clock::now();
  }
  ~SectionTimer() {
    if (tracker_.timing()) {
      tracker_.addSectionSeconds(
          section_, std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
    }
  }
  SectionTimer(const SectionTimer&) = delete;
  SectionTimer& operator=(const SectionTimer&) = delete;

 private:
  ExploreTracker& tracker_;
  ExploreTracker::Section section_;
  std::chrono::steady_clock::time_point start_;
};

/// 0 = hardware concurrency, otherwise the requested count.
inline std::uint32_t resolveThreads(std::uint32_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

/// The level-synchronous parallel engine (parallel_explore.cpp). Inputs are
/// pre-validated by the public entry points; produces a graph bit-identical
/// to the serial loop for any thread count.
ConfigGraph exploreParallelImpl(const Protocol& proto,
                                const std::vector<Configuration>& initials,
                                const ExploreOptions& options, bool canonical);

/// Materializes one SpillPolicy flush decision: drains the RAM table, sorts
/// by (fingerprint, id), writes a run, and compacts if the action says so.
/// Shared by the serial loop and the parallel merge thread
/// (compressed_explore.cpp).
void flushTableToRun(FpTable& table, SpillRunSet& runs,
                     const SpillPolicy::Action& action);

/// The serial compressed-storage engine (compressed_explore.cpp): identical
/// BFS, interning against the two-tier fingerprint table and appending to
/// the delta-coded stores. Inputs pre-validated by the public entry points.
ConfigGraph exploreSerialCompressed(const Protocol& proto,
                                    const std::vector<Configuration>& initials,
                                    const ExploreOptions& options,
                                    bool canonical);

}  // namespace ppn::detail
