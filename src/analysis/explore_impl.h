// Internal machinery shared by the serial (explore.cpp) and parallel
// (parallel_explore.cpp) exploration engines. Not part of the public API.
//
// The two engines must produce bit-identical ConfigGraphs, so everything
// that defines the output — successor enumeration order, edge metadata,
// truncation semantics — lives here exactly once. The enumerators replicate
// the historical serial loops verbatim: orientation 1 before orientation 2,
// orientation 2 suppressed for leader pairs and for coinciding outcomes,
// canonical null edges omitted, canonical duplicate (state_i, state_j)
// combinations skipped via the sortedness of the canonical form.
#pragma once

#include <chrono>
#include <thread>

#include "analysis/explore.h"
#include "core/engine.h"

namespace ppn::detail {

/// Everything an Edge carries except the target id (which interning decides).
struct EdgeMeta {
  PairLabel label = 0xffff;
  std::uint16_t initiator = 0;
  std::uint16_t responder = 0;
  bool changed = false;
  bool changedMobile = false;
  bool changedName = false;
};

/// Whether any agent's projected name differs between the two mobile
/// vectors (same length by construction).
inline bool namesDiffer(const Protocol& proto, const std::vector<StateId>& before,
                        const std::vector<StateId>& after) {
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (proto.nameOf(before[i]) != proto.nameOf(after[i])) return true;
  }
  return false;
}

/// Enumerates the concrete successors of `current` in the canonical serial
/// order, calling fn(Configuration&&, const EdgeMeta&) once per edge
/// (including null self-loops — weak-fairness coverage needs them).
template <class Fn>
void forEachConcreteSuccessor(const Protocol& proto, const Configuration& current,
                              std::uint32_t numParticipants,
                              const InteractionGraph* topology, Fn&& fn) {
  const std::uint32_t m = numParticipants;
  const bool hasLeader = proto.hasLeader();
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = i + 1; j < m; ++j) {
      if (topology != nullptr && !topology->hasEdge(i, j)) continue;
      const PairLabel label = pairLabel(i, j, m);
      // Orientation 1: i initiates.
      Configuration next = current;
      applyInteraction(proto, next, Interaction{i, j});
      const bool changed1 = !(next == current);
      const bool mobile1 = next.mobile != current.mobile;
      const bool name1 =
          mobile1 && namesDiffer(proto, current.mobile, next.mobile);
      const EdgeMeta meta1{label, static_cast<std::uint16_t>(i),
                           static_cast<std::uint16_t>(j), changed1, mobile1,
                           name1};
      // Orientation 2: j initiates (distinct only for asymmetric
      // mobile-mobile rules; leader interactions are orientation-free).
      const bool involvesLeader = hasLeader && j == m - 1;
      if (involvesLeader) {
        fn(std::move(next), meta1);
        continue;
      }
      Configuration next2 = current;
      applyInteraction(proto, next2, Interaction{j, i});
      const bool distinct = !(next2 == next);
      fn(std::move(next), meta1);
      if (distinct) {
        const bool mobile2 = next2.mobile != current.mobile;
        const bool name2 =
            mobile2 && namesDiffer(proto, current.mobile, next2.mobile);
        fn(std::move(next2),
           EdgeMeta{label, static_cast<std::uint16_t>(j),
                    static_cast<std::uint16_t>(i), !(next2 == current), mobile2,
                    name2});
      }
    }
  }
}

/// Enumerates the canonical successors of the canonical configuration
/// `current` in the canonical serial order. Null transitions are omitted;
/// emitted configurations are already canonicalized.
template <class Fn>
void forEachCanonicalSuccessor(const Protocol& proto, const Configuration& current,
                               std::uint32_t numMobile, Fn&& fn) {
  const std::uint32_t n = numMobile;
  auto emit = [&](Configuration next, bool changedMobile) {
    const bool changedName =
        changedMobile && namesDiffer(proto, current.mobile, next.mobile);
    next = next.canonicalized();
    const bool changed = changedMobile || !(next == current) ||
                         next.leader != current.leader;
    if (!changed) return;  // canonical graphs omit null edges
    fn(std::move(next),
       EdgeMeta{0xffff, 0, 0, true, changedMobile, changedName});
  };

  // Mobile-mobile interactions: pick representative agent indices for each
  // present state pair. The canonical form is sorted, so equal states are
  // adjacent; scanning index pairs over *distinct positions* covers every
  // state pair including homonym pairs, with duplicates deduplicated by
  // interning. N is tiny in checker workloads, so the O(N^2) scan is fine.
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      // Skip repeats of the same (state_i, state_j) combination.
      if (i > 0 && current.mobile[i - 1] == current.mobile[i]) continue;
      if (j > i + 1 && current.mobile[j - 1] == current.mobile[j]) continue;
      Configuration next = current;
      applyInteraction(proto, next, Interaction{i, j});
      const bool mobile1 = next.mobile != current.mobile;
      emit(std::move(next), mobile1);
      Configuration next2 = current;
      applyInteraction(proto, next2, Interaction{j, i});
      const bool mobile2 = next2.mobile != current.mobile;
      emit(std::move(next2), mobile2);
    }
  }
  if (proto.hasLeader()) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i > 0 && current.mobile[i - 1] == current.mobile[i]) continue;
      Configuration next = current;
      applyInteraction(proto, next, Interaction{n, i});
      const bool mobileChanged = next.mobile != current.mobile;
      emit(std::move(next), mobileChanged);
    }
  }
}

/// Progress bookkeeping for one exploration. All methods are single-branch
/// no-ops when no observer is attached, so the unobserved BFS stays
/// bit-identical to the pre-telemetry loop.
///
/// Byte accounting is incremental and capacity-exact: configuration bytes
/// accrue at intern time, adjacency bytes once a node's expansion finished
/// (its edge vector's capacity is final then), so the final done=true event
/// reports exactly configGraphBytes() of the returned graph.
class ExploreTracker {
 public:
  ExploreTracker(ExploreObserver* obs, std::uint64_t exploreId,
                 const ConfigGraph& g)
      : obs_(obs), exploreId_(exploreId), g_(&g) {
    if (obs_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  void recordEdge(bool dedupHit) {
    if (obs_ == nullptr) return;
    ++edges_;
    if (dedupHit) ++dedupHits_;
  }

  /// The configuration just pushed onto the graph (struct + mobile payload +
  /// its adjacency vector header).
  void recordInterned() {
    if (obs_ == nullptr) return;
    configBytes_ += sizeof(Configuration) +
                    g_->configs.back().mobile.capacity() * sizeof(StateId) +
                    sizeof(std::vector<Edge>);
  }

  /// Node `id`'s expansion is complete; its adjacency capacity is final.
  void recordNodeExpanded(std::uint32_t id) {
    if (obs_ == nullptr) return;
    adjBytes_ += g_->adj[id].capacity() * sizeof(Edge);
  }

  void recordExpansion(std::size_t frontierSize) {
    if (obs_ == nullptr) return;
    ++expanded_;
    if (expanded_ % kExploreProgressStride == 0) emit(frontierSize, false);
  }

  /// Bulk variant for the parallel engine (merge thread only): accounts one
  /// completed BFS level and emits at most one progress event when the level
  /// crossed a stride boundary.
  void recordLevel(std::uint64_t expandedNodes, std::uint64_t edges,
                   std::uint64_t dedupHits, std::uint64_t adjBytes,
                   std::size_t frontierSize) {
    if (obs_ == nullptr) return;
    expanded_ += expandedNodes;
    edges_ += edges;
    dedupHits_ += dedupHits;
    adjBytes_ += adjBytes;
    if (expanded_ / kExploreProgressStride > emittedStrides_) {
      emittedStrides_ = expanded_ / kExploreProgressStride;
      emit(frontierSize, false);
    }
  }

  template <class Container>
  void recordTruncation(std::size_t maxNodes, const Container& frontier) {
    if (obs_ == nullptr) return;
    ExploreTruncatedEvent e;
    e.exploreId = exploreId_;
    e.nodes = g_->size();
    e.maxNodes = maxNodes;
    e.frontier.assign(frontier.begin(), frontier.end());
    obs_->onTruncated(e);
  }

  void finish(std::size_t frontierSize) {
    if (obs_ == nullptr) return;
    emit(frontierSize, true);
  }

 private:
  void emit(std::size_t frontierSize, bool done) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    ExploreProgressEvent e;
    e.exploreId = exploreId_;
    e.nodes = g_->size();
    e.frontier = frontierSize;
    e.edges = edges_;
    e.dedupHits = dedupHits_;
    e.bytesEstimate = configBytes_ + adjBytes_;
    e.nodesPerSec =
        elapsed > 0.0 ? static_cast<double>(expanded_) / elapsed : 0.0;
    e.elapsedMillis = elapsed * 1e3;
    e.done = done;
    obs_->onExploreProgress(e);
  }

  ExploreObserver* obs_;
  std::uint64_t exploreId_;
  const ConfigGraph* g_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t expanded_ = 0;
  std::uint64_t edges_ = 0;
  std::uint64_t dedupHits_ = 0;
  std::uint64_t configBytes_ = 0;
  std::uint64_t adjBytes_ = 0;
  std::uint64_t emittedStrides_ = 0;
};

/// 0 = hardware concurrency, otherwise the requested count.
inline std::uint32_t resolveThreads(std::uint32_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

/// The level-synchronous parallel engine (parallel_explore.cpp). Inputs are
/// pre-validated by the public entry points; produces a graph bit-identical
/// to the serial loop for any thread count.
ConfigGraph exploreParallelImpl(const Protocol& proto,
                                const std::vector<Configuration>& initials,
                                const ExploreOptions& options, bool canonical);

}  // namespace ppn::detail
