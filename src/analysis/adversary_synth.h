// Adversary synthesis: turn a weak-fairness violation verdict into a
// concrete, replayable schedule — the constructive content of the paper's
// impossibility proofs (Prop 1, Theorem 11), extracted automatically.
//
// Given a protocol that fails the weak-fairness check, the synthesizer
// produces (start, prefix, cycle):
//   * `start`  — an initial configuration from the quantified set,
//   * `prefix` — interactions driving the system into a violating fair SCC,
//   * `cycle`  — a finite interaction loop that (a) returns to its starting
//     configuration, (b) schedules EVERY required pair at least once, and
//     (c) witnesses the violation (an unnamed configuration, or a mobile
//     state change, somewhere along the loop).
// Repeating `cycle` forever yields an infinite weakly fair execution on
// which the problem is never solved. replayAdversary() re-executes it on a
// fresh engine and double-checks all three properties.
#pragma once

#include <optional>
#include <vector>

#include "analysis/explore.h"
#include "analysis/problem.h"

namespace ppn {

struct AdversarySchedule {
  Configuration start;
  std::vector<Interaction> prefix;
  std::vector<Interaction> cycle;
  /// Participant count (for reporting).
  std::uint32_t numParticipants = 0;
};

/// Synthesizes a weakly fair violating schedule, or nullopt when the
/// protocol actually solves the problem (or exploration was truncated).
///
/// A non-null `observer` receives a "synthesize" phase wrapping nested
/// "explore" (with progress/truncation events) and "scc" phases, tagged with
/// `exploreId`. Null observer = identical behavior.
std::optional<AdversarySchedule> synthesizeWeakAdversary(
    const Protocol& proto, const Problem& problem,
    const std::vector<Configuration>& initials, std::size_t maxNodes = 4'000'000,
    const InteractionGraph* topology = nullptr,
    ExploreObserver* observer = nullptr, std::uint64_t exploreId = 0);

/// Options form: forwards everything including options.threads into the
/// exploration; the synthesized schedule is identical for any thread count.
std::optional<AdversarySchedule> synthesizeWeakAdversary(
    const Protocol& proto, const Problem& problem,
    const std::vector<Configuration>& initials, const ExploreOptions& options);

struct ReplayReport {
  bool cycleClosed = false;      ///< cycle returns to its entry configuration
  bool allPairsScheduled = false;///< every required pair occurs in the cycle
  bool violationWitnessed = false;///< problem violated along the cycle
  bool valid() const {
    return cycleClosed && allPairsScheduled && violationWitnessed;
  }
};

/// Replays the schedule on a fresh engine and verifies the three defining
/// properties above. `topology` must match the one used at synthesis.
ReplayReport replayAdversary(const Protocol& proto, const Problem& problem,
                             const AdversarySchedule& schedule,
                             const InteractionGraph* topology = nullptr);

}  // namespace ppn
