// Exhaustive exploration of the configuration graph of a protocol instance.
//
// Two granularities:
//  * exploreConcrete — nodes are concrete configurations (one state per
//    agent). Needed whenever agent identity matters: weak fairness is a
//    property of *agent pairs* (paper, Section 2), so its checker must see
//    which pair each edge corresponds to.
//  * exploreCanonical — nodes are canonical (sorted-multiset) configurations,
//    the paper's "equivalent configurations" (Section 3.1). Transitions
//    commute with agent permutations and all analysed predicates are
//    permutation-invariant, so this quotient is sound for global fairness and
//    exponentially smaller.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/compressed_graph.h"
#include "core/configuration.h"
#include "core/interaction_graph.h"
#include "core/protocol.h"
#include "obs/explore_observer.h"

namespace ppn {

/// Identifier of the unordered participant pair {i, j}, i < j, in the
/// triangular enumeration used by pairLabel(). The leader (participant N)
/// takes part like any other participant.
using PairLabel = std::uint16_t;

/// Number of unordered pairs among `numParticipants`.
constexpr std::uint32_t numPairs(std::uint32_t numParticipants) {
  return numParticipants * (numParticipants - 1) / 2;
}

/// Triangular index of {i, j} with i < j among numParticipants participants.
constexpr PairLabel pairLabel(std::uint32_t i, std::uint32_t j,
                              std::uint32_t numParticipants) {
  return static_cast<PairLabel>(i * numParticipants - i * (i + 1) / 2 +
                                (j - i - 1));
}

struct Edge {
  std::uint32_t to = 0;
  /// Pair label for concrete graphs; 0xffff (unlabeled) in canonical graphs.
  PairLabel label = 0xffff;
  /// The oriented interaction that produced this edge (valid in concrete
  /// graphs) — lets the adversary synthesizer emit replayable schedules.
  std::uint16_t initiator = 0;
  std::uint16_t responder = 0;
  /// Whether the transition changed anything at all (non-null).
  bool changed = false;
  /// Whether any *mobile* agent's state changed (leader-only housekeeping
  /// does not count).
  bool changedMobile = false;
  /// Whether any agent's projected NAME (Protocol::nameOf) changed — what
  /// naming quiescence is judged on. Equals changedMobile for identity
  /// projections.
  bool changedName = false;

  Interaction interaction() const { return Interaction{initiator, responder}; }
};

/// The explored graph, in one of two storage representations (DESIGN.md
/// decision 19). kExplicit materializes `configs` and `adj` below; the
/// default kCompressed leaves them empty and stores the same graph — same
/// node ids, same edge order — delta-coded in `packed`. Consumers that go
/// through the accessors (config(), forEachEdge(), edges(), findConfig())
/// work identically on both; tests may still hand-build explicit graphs by
/// filling the public vectors.
struct ConfigGraph {
  std::vector<Configuration> configs;
  std::vector<std::vector<Edge>> adj;
  detail::CompressedGraph packed;
  std::uint32_t numParticipants = 0;
  /// True when exploration hit maxNodes (or the byte budget) before closing
  /// the frontier; any verdict computed from a truncated graph is unreliable
  /// and the checkers refuse to produce one.
  bool truncated = false;
  /// True when the BYTE budget (ExploreOptions.maxBytes) fired the cut, not
  /// the node cap. Only meaningful when `truncated` is set.
  bool truncatedByBudget = false;

  bool compressed() const { return packed.engaged(); }
  std::size_t size() const {
    return compressed() ? packed.nodeCount() : configs.size();
  }

  /// Node `id`'s configuration. Returns by value: compressed graphs decode
  /// on demand. (Explicit callers that want a reference can still index
  /// `configs` directly.)
  Configuration config(std::uint32_t id) const {
    return compressed() ? packed.config(id) : configs[id];
  }

  std::size_t edgeCount(std::uint32_t id) const {
    return compressed() ? packed.edgeStore().edgeCount(id) : adj[id].size();
  }

  /// Visits node `id`'s out-edges in their exploration order as
  /// fn(const Edge&) — the storage-independent way to walk adjacency.
  /// Compressed graphs decode the varint stream on the fly; nodes never
  /// expanded (a truncated frontier) have no edges in either storage.
  template <class Fn>
  void forEachEdge(std::uint32_t id, Fn&& fn) const {
    if (!compressed()) {
      for (const Edge& e : adj[id]) fn(e);
      return;
    }
    const bool concrete = packed.edgeStore().concrete();
    packed.edgeStore().forEachEdgeRaw(id, [&](const detail::RawEdge& r) {
      Edge e;
      e.to = r.to;
      e.changed = (r.flags & 1) != 0;
      e.changedMobile = (r.flags & 2) != 0;
      e.changedName = (r.flags & 4) != 0;
      if (concrete) {
        e.initiator = r.initiator;
        e.responder = r.responder;
        const std::uint32_t lo = std::min<std::uint32_t>(r.initiator, r.responder);
        const std::uint32_t hi = std::max<std::uint32_t>(r.initiator, r.responder);
        e.label = pairLabel(lo, hi, numParticipants);
      }
      fn(e);
    });
  }

  /// Materialized copy of node `id`'s out-edges, for consumers that need
  /// random access within the list (e.g. path reconstruction).
  std::vector<Edge> edges(std::uint32_t id) const {
    std::vector<Edge> out;
    out.reserve(edgeCount(id));
    forEachEdge(id, [&](const Edge& e) { out.push_back(e); });
    return out;
  }

  /// Id of the node equal to `c`, if interned. Linear scan in both storages
  /// (callers use it for initial configurations only).
  std::optional<std::uint32_t> findConfig(const Configuration& c) const {
    const auto n = static_cast<std::uint32_t>(size());
    for (std::uint32_t id = 0; id < n; ++id) {
      if (config(id) == c) return id;
    }
    return std::nullopt;
  }
};

/// How often exploration reports progress: one ExploreProgressEvent per this
/// many expanded nodes (plus a final done=true event per exploration).
constexpr std::uint64_t kExploreProgressStride = 1024;

/// Exact heap footprint of a ConfigGraph as returned. Explicit storage:
/// interned configurations (struct + mobile payload at its real capacity)
/// plus adjacency (vector headers + edge payload at its real capacity).
/// Compressed storage: the delta-coded config blob and edge streams with
/// their sample indexes, at their real (modeled == allocated) capacities.
/// Note this is the GRAPH's footprint only — ExploreProgressEvent.
/// bytesEstimate reports the MemoryLedger total (DESIGN.md decision 18),
/// which additionally charges the dedup table, the BFS frontier and (in
/// explicit mode) packed-codec heap spill, so the final done=true event
/// reads >= configGraphBytes() of the returned graph.
std::uint64_t configGraphBytes(const ConfigGraph& g);

/// In-RAM representation of the explored graph (ConfigGraph docs above).
enum class GraphStorage {
  /// Materialized vectors: fastest to traverse, 330-430 bytes/node.
  kExplicit,
  /// Delta-coded stores decoded on demand: ~3-8x smaller, and the only mode
  /// that can spill its dedup table to disk. The graph is identical
  /// node-for-node and edge-for-edge to kExplicit (differential-tested).
  kCompressed,
};

/// Knobs shared by both explorers (and forwarded by the checkers).
struct ExploreOptions {
  std::size_t maxNodes = 4'000'000;
  /// Byte budget over the exploration's MODELED footprint (the MemoryLedger
  /// total: configs + adjacency + dedup table + frontier + codec spill;
  /// DESIGN.md decision 18). 0 disables the budget. When the ledger total
  /// exceeds this, exploration truncates deterministically with the same
  /// serial-replayed cut discipline as maxNodes: node ids, edge order, the
  /// ExploreTruncatedEvent and the final graph are bit-identical at every
  /// thread count. The node cap is checked first, so a run that trips both
  /// reports the maxNodes cut.
  std::uint64_t maxBytes = 0;
  /// Worker threads for the level-synchronous parallel BFS. 1 (the default)
  /// runs the serial reference loop; 0 means hardware concurrency. Any value
  /// produces a bit-identical ConfigGraph — node ids, edge order and
  /// truncation behavior all match the serial result (DESIGN.md, decision
  /// 14) — so callers may tune this freely.
  std::uint32_t threads = 1;
  /// Restricts interactions to a graph (concrete exploration only; must be
  /// null for exploreCanonical).
  const InteractionGraph* topology = nullptr;
  ExploreObserver* observer = nullptr;
  std::uint64_t exploreId = 0;
  /// Graph representation (see GraphStorage). Compressed is the default;
  /// both produce the same node ids, edge order and truncation behavior.
  GraphStorage storage = GraphStorage::kCompressed;
  /// Two-tier dedup spill threshold, compressed storage only: when the
  /// modeled bytes of the in-RAM dedup table exceed this, the table drains
  /// to a sorted run file on disk (DESIGN.md decision 19) and probing falls
  /// back to external memory, so a maxBytes budget degrades to disk instead
  /// of to an UNKNOWN verdict. 0 disables spilling. Ignored (with no effect
  /// on the graph) under kExplicit storage.
  std::uint64_t spillBytes = 0;
  /// Directory for spill run files; empty = the system temp directory.
  /// Files are created 0600 and unlinked when the graph's exploration ends.
  std::string spillDir;
};

/// Explores all configurations reachable from `initials`. Every applicable
/// interaction contributes an edge, *including null transitions* (self-loop
/// edges with changed = false) — weak-fairness coverage analysis needs them.
/// When `topology` is non-null, only its edges may interact (restricted
/// interaction graph); it must span the same participant count.
///
/// When `observer` is non-null it receives an "explore" phase pair, one
/// ExploreProgressEvent per kExploreProgressStride expanded nodes plus a
/// final done=true event, and — when maxNodes fires — an
/// ExploreTruncatedEvent carrying the unexpanded frontier. The observer only
/// reads; a null observer leaves behavior bit-identical.
ConfigGraph exploreConcrete(const Protocol& proto,
                            const std::vector<Configuration>& initials,
                            const ExploreOptions& options);

/// Explores the canonical quotient graph. Edges are unlabeled and null
/// transitions are omitted (global-fairness analysis does not need them).
/// Observer contract as in exploreConcrete. options.topology must be null.
ConfigGraph exploreCanonical(const Protocol& proto,
                             const std::vector<Configuration>& initials,
                             const ExploreOptions& options);

/// Positional convenience overloads (serial, threads = 1).
ConfigGraph exploreConcrete(const Protocol& proto,
                            const std::vector<Configuration>& initials,
                            std::size_t maxNodes = 4'000'000,
                            const InteractionGraph* topology = nullptr,
                            ExploreObserver* observer = nullptr,
                            std::uint64_t exploreId = 0);

ConfigGraph exploreCanonical(const Protocol& proto,
                             const std::vector<Configuration>& initials,
                             std::size_t maxNodes = 4'000'000,
                             ExploreObserver* observer = nullptr,
                             std::uint64_t exploreId = 0);

/// Human-readable reason string for a truncated exploration, shared by the
/// fairness checkers' UNKNOWN verdicts: names the node cap or, when
/// truncatedByBudget is set, the byte budget that fired.
std::string truncationReason(const ConfigGraph& g, const ExploreOptions& options);

}  // namespace ppn
