// Exhaustive exploration of the configuration graph of a protocol instance.
//
// Two granularities:
//  * exploreConcrete — nodes are concrete configurations (one state per
//    agent). Needed whenever agent identity matters: weak fairness is a
//    property of *agent pairs* (paper, Section 2), so its checker must see
//    which pair each edge corresponds to.
//  * exploreCanonical — nodes are canonical (sorted-multiset) configurations,
//    the paper's "equivalent configurations" (Section 3.1). Transitions
//    commute with agent permutations and all analysed predicates are
//    permutation-invariant, so this quotient is sound for global fairness and
//    exponentially smaller.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/interaction_graph.h"
#include "core/protocol.h"
#include "obs/explore_observer.h"

namespace ppn {

/// Identifier of the unordered participant pair {i, j}, i < j, in the
/// triangular enumeration used by pairLabel(). The leader (participant N)
/// takes part like any other participant.
using PairLabel = std::uint16_t;

/// Number of unordered pairs among `numParticipants`.
constexpr std::uint32_t numPairs(std::uint32_t numParticipants) {
  return numParticipants * (numParticipants - 1) / 2;
}

/// Triangular index of {i, j} with i < j among numParticipants participants.
constexpr PairLabel pairLabel(std::uint32_t i, std::uint32_t j,
                              std::uint32_t numParticipants) {
  return static_cast<PairLabel>(i * numParticipants - i * (i + 1) / 2 +
                                (j - i - 1));
}

struct Edge {
  std::uint32_t to = 0;
  /// Pair label for concrete graphs; 0xffff (unlabeled) in canonical graphs.
  PairLabel label = 0xffff;
  /// The oriented interaction that produced this edge (valid in concrete
  /// graphs) — lets the adversary synthesizer emit replayable schedules.
  std::uint16_t initiator = 0;
  std::uint16_t responder = 0;
  /// Whether the transition changed anything at all (non-null).
  bool changed = false;
  /// Whether any *mobile* agent's state changed (leader-only housekeeping
  /// does not count).
  bool changedMobile = false;
  /// Whether any agent's projected NAME (Protocol::nameOf) changed — what
  /// naming quiescence is judged on. Equals changedMobile for identity
  /// projections.
  bool changedName = false;

  Interaction interaction() const { return Interaction{initiator, responder}; }
};

struct ConfigGraph {
  std::vector<Configuration> configs;
  std::vector<std::vector<Edge>> adj;
  std::uint32_t numParticipants = 0;
  /// True when exploration hit maxNodes (or the byte budget) before closing
  /// the frontier; any verdict computed from a truncated graph is unreliable
  /// and the checkers refuse to produce one.
  bool truncated = false;
  /// True when the BYTE budget (ExploreOptions.maxBytes) fired the cut, not
  /// the node cap. Only meaningful when `truncated` is set.
  bool truncatedByBudget = false;

  std::size_t size() const { return configs.size(); }
};

/// How often exploration reports progress: one ExploreProgressEvent per this
/// many expanded nodes (plus a final done=true event per exploration).
constexpr std::uint64_t kExploreProgressStride = 1024;

/// Exact heap footprint of a ConfigGraph as returned: interned configurations
/// (struct + mobile payload at its real capacity) plus adjacency (vector
/// headers + edge payload at its real capacity). Note this is the GRAPH's
/// footprint only — ExploreProgressEvent.bytesEstimate reports the
/// MemoryLedger total (DESIGN.md decision 18), which additionally charges the
/// dedup table, the BFS frontier and packed-codec heap spill, so the final
/// done=true event reads >= configGraphBytes() of the returned graph.
std::uint64_t configGraphBytes(const ConfigGraph& g);

/// Knobs shared by both explorers (and forwarded by the checkers).
struct ExploreOptions {
  std::size_t maxNodes = 4'000'000;
  /// Byte budget over the exploration's MODELED footprint (the MemoryLedger
  /// total: configs + adjacency + dedup table + frontier + codec spill;
  /// DESIGN.md decision 18). 0 disables the budget. When the ledger total
  /// exceeds this, exploration truncates deterministically with the same
  /// serial-replayed cut discipline as maxNodes: node ids, edge order, the
  /// ExploreTruncatedEvent and the final graph are bit-identical at every
  /// thread count. The node cap is checked first, so a run that trips both
  /// reports the maxNodes cut.
  std::uint64_t maxBytes = 0;
  /// Worker threads for the level-synchronous parallel BFS. 1 (the default)
  /// runs the serial reference loop; 0 means hardware concurrency. Any value
  /// produces a bit-identical ConfigGraph — node ids, edge order and
  /// truncation behavior all match the serial result (DESIGN.md, decision
  /// 14) — so callers may tune this freely.
  std::uint32_t threads = 1;
  /// Restricts interactions to a graph (concrete exploration only; must be
  /// null for exploreCanonical).
  const InteractionGraph* topology = nullptr;
  ExploreObserver* observer = nullptr;
  std::uint64_t exploreId = 0;
};

/// Explores all configurations reachable from `initials`. Every applicable
/// interaction contributes an edge, *including null transitions* (self-loop
/// edges with changed = false) — weak-fairness coverage analysis needs them.
/// When `topology` is non-null, only its edges may interact (restricted
/// interaction graph); it must span the same participant count.
///
/// When `observer` is non-null it receives an "explore" phase pair, one
/// ExploreProgressEvent per kExploreProgressStride expanded nodes plus a
/// final done=true event, and — when maxNodes fires — an
/// ExploreTruncatedEvent carrying the unexpanded frontier. The observer only
/// reads; a null observer leaves behavior bit-identical.
ConfigGraph exploreConcrete(const Protocol& proto,
                            const std::vector<Configuration>& initials,
                            const ExploreOptions& options);

/// Explores the canonical quotient graph. Edges are unlabeled and null
/// transitions are omitted (global-fairness analysis does not need them).
/// Observer contract as in exploreConcrete. options.topology must be null.
ConfigGraph exploreCanonical(const Protocol& proto,
                             const std::vector<Configuration>& initials,
                             const ExploreOptions& options);

/// Positional convenience overloads (serial, threads = 1).
ConfigGraph exploreConcrete(const Protocol& proto,
                            const std::vector<Configuration>& initials,
                            std::size_t maxNodes = 4'000'000,
                            const InteractionGraph* topology = nullptr,
                            ExploreObserver* observer = nullptr,
                            std::uint64_t exploreId = 0);

ConfigGraph exploreCanonical(const Protocol& proto,
                             const std::vector<Configuration>& initials,
                             std::size_t maxNodes = 4'000'000,
                             ExploreObserver* observer = nullptr,
                             std::uint64_t exploreId = 0);

/// Human-readable reason string for a truncated exploration, shared by the
/// fairness checkers' UNKNOWN verdicts: names the node cap or, when
/// truncatedByBudget is set, the byte budget that fired.
std::string truncationReason(const ConfigGraph& g, const ExploreOptions& options);

}  // namespace ppn
