// Exact verification of convergence under GLOBAL fairness.
//
// Soundness argument (matching the paper's use of global fairness,
// Section 2): in a finite system, the set of configurations a globally fair
// execution visits infinitely often is closed under -> and mutually
// reachable, i.e. exactly a *bottom SCC* of the reachable configuration
// graph; conversely every reachable bottom SCC is the infinite-visit set of
// some globally fair execution. Hence:
//
//   the protocol solves the problem from the given initial set under global
//   fairness  <=>  every reachable bottom SCC consists of configurations
//   where the problem predicate holds and (for problems requiring it) no
//   applicable transition changes a mobile state.
//
// The check runs on the canonical (multiset) quotient, sound because
// transitions commute with agent permutations and problem predicates are
// permutation-invariant.
#pragma once

#include <optional>
#include <string>

#include "analysis/explore.h"
#include "analysis/problem.h"

namespace ppn {

struct GlobalVerdict {
  /// False when exploration was truncated; `solves` is then meaningless.
  bool explored = false;
  bool solves = false;
  std::size_t numConfigs = 0;
  std::size_t numBottomSccs = 0;
  /// A configuration inside a bad bottom SCC, when !solves.
  std::optional<Configuration> witness;
  std::string reason;
};

/// A non-null `observer` receives a "check" phase wrapping nested "explore"
/// (with progress/truncation events), "scc" and "verdict" phases, all tagged
/// with `exploreId`. Null observer = identical behavior. Same contract for
/// checkGlobalFairnessConcrete.
GlobalVerdict checkGlobalFairness(const Protocol& proto, const Problem& problem,
                                  const std::vector<Configuration>& initials,
                                  std::size_t maxNodes = 4'000'000,
                                  ExploreObserver* observer = nullptr,
                                  std::uint64_t exploreId = 0);

/// Global-fairness check over the CONCRETE configuration graph, optionally
/// restricted to an interaction topology. Needed because the canonical
/// quotient is only sound for the complete-interaction model: on a star or
/// ring, agents are distinguishable by their position in the graph. Silence
/// and quiescence are judged from the explored edges (only interactions the
/// topology allows count).
GlobalVerdict checkGlobalFairnessConcrete(
    const Protocol& proto, const Problem& problem,
    const std::vector<Configuration>& initials, std::size_t maxNodes = 4'000'000,
    const InteractionGraph* topology = nullptr,
    ExploreObserver* observer = nullptr, std::uint64_t exploreId = 0);

/// Options forms: forward everything including options.threads into the
/// exploration (the SCC/verdict passes stay serial). Verdicts are identical
/// for any options.threads. checkGlobalFairness requires a null
/// options.topology (canonical quotient).
GlobalVerdict checkGlobalFairness(const Protocol& proto, const Problem& problem,
                                  const std::vector<Configuration>& initials,
                                  const ExploreOptions& options);

GlobalVerdict checkGlobalFairnessConcrete(
    const Protocol& proto, const Problem& problem,
    const std::vector<Configuration>& initials, const ExploreOptions& options);

}  // namespace ppn
