// Builders for the initial-configuration sets over which the checkers
// quantify, matching the paper's initialization assumptions.
#pragma once

#include <vector>

#include "core/configuration.h"
#include "core/protocol.h"

namespace ppn {

/// The protocol's declared uniform initialization (Prop 14 style): exactly
/// one configuration. Throws if the protocol declares none.
std::vector<Configuration> declaredUniformInitials(const Protocol& proto,
                                                   std::uint32_t numMobile);

/// Every uniform mobile initialization: one configuration per mobile state s
/// (all agents in s), crossed with the leader's initial state(s). Used when
/// asking "could ANY uniform initialization make this protocol work?"
/// (impossibility searches, Props 1-2).
std::vector<Configuration> allUniformInitials(const Protocol& proto,
                                              std::uint32_t numMobile);

/// Arbitrary initialization (self-stabilization): every concrete
/// configuration — |Q|^N crossed with the leader states. Leader states are
/// initialLeaderState() when the leader is initialized, otherwise
/// allLeaderStates() (throws if not enumerable).
std::vector<Configuration> allConcreteConfigurations(const Protocol& proto,
                                                     std::uint32_t numMobile);

/// Arbitrary initialization, canonical quotient: every multiset of N states
/// crossed with the leader states. C(|Q|+N-1, N) per leader state.
std::vector<Configuration> allCanonicalConfigurations(const Protocol& proto,
                                                      std::uint32_t numMobile);

}  // namespace ppn
