// Disk tier of the two-tier dedup table (DESIGN decision 19).
//
// When the modeled bytes of the in-RAM FpTable cross ExploreOptions::
// spillBytes, the table is drained into a sorted run file and probing falls
// back to external memory: the classic sorted-run external-BFS dedup of
// Korf's frontier search, specialised to our (fingerprint, node id) pairs.
//
// On-disk run format (little-endian):
//   header  24 B : magic "PPNSPIL1" | u64 entryCount | u32 crc32(payload)
//                  | u32 reserved
//   payload      : entryCount records of (u64 fingerprint, u32 id) = 12 B,
//                  sorted by (fingerprint, id)
//
// Each run keeps an in-RAM sample of every kProbeStride-th fingerprint, so a
// probe is one binary search over samples plus one pread of at most
// kProbeStride records. pread carries its own offset, so concurrent probes
// from the parallel explorer's workers need no locking. When the number of
// live runs exceeds SpillPolicy::kMaxRuns they are k-way merged (streaming,
// CRC-verified) into a single run.
//
// SpillPolicy is the *decision* half, split from the I/O so the parallel
// engine's serial cut replay can advance a copy of it: every flush is a pure
// function of the interned-node count, which makes spill behaviour — and the
// kDedup ledger component it drives — engine-invariant and bit-identical
// across thread counts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ppn::detail {

/// CRC-32 (IEEE 802.3, reflected) over a byte range; seed with 0.
std::uint32_t crc32(const void* bytes, std::uint64_t n,
                    std::uint32_t seed = 0);

/// One (fingerprint, id) dedup record.
struct SpillEntry {
  std::uint64_t fp = 0;
  std::uint32_t id = 0;
};

/// The set of sorted run files owned by one exploration. Files live in
/// `dir` (empty = the system temp directory) and are unlinked on
/// destruction.
class SpillRunSet {
 public:
  /// Every kProbeStride-th fingerprint of a run is kept in RAM; a probe
  /// preads at most this many records.
  static constexpr std::uint32_t kProbeStride = 64;

  explicit SpillRunSet(std::string dir) : dir_(std::move(dir)) {}
  ~SpillRunSet();
  SpillRunSet(const SpillRunSet&) = delete;
  SpillRunSet& operator=(const SpillRunSet&) = delete;

  std::size_t runCount() const { return runs_.size(); }
  std::uint64_t diskBytes() const;

  /// Writes `entries` (must be sorted by (fp, id)) as a new run.
  void writeRun(const std::vector<SpillEntry>& entries);

  /// Streams all runs through a k-way merge into a single replacement run,
  /// verifying each input's CRC. No-op with fewer than two runs.
  void compact();

  /// Appends the ids of every record with fingerprint `fp`, across all
  /// runs, to `out` (which is cleared first). Thread-safe: pread only.
  void candidates(std::uint64_t fp, std::vector<std::uint32_t>& out) const;

 private:
  struct Run {
    int fd = -1;
    std::string path;
    std::uint64_t entryCount = 0;
    std::vector<std::uint64_t> sampleFps;  // every kProbeStride-th fp
  };

  std::string runPath();
  void closeRun(Run& run);

  std::string dir_;
  std::vector<Run> runs_;
  std::uint64_t nextRunId_ = 0;
};

/// Deterministic spill state machine. maybeFlush(k) must be called with the
/// interned-node count at every point where the serial engine would check —
/// top of each pop serially, each replayed pop in the parallel cut replay —
/// so both engines take byte-identical flush decisions.
class SpillPolicy {
 public:
  /// Compact when more than this many runs are live.
  static constexpr std::size_t kMaxRuns = 8;

  explicit SpillPolicy(std::uint64_t thresholdBytes)
      : threshold_(thresholdBytes) {}

  bool enabled() const { return threshold_ != 0; }

  /// One flush decision: drain RAM entries [from, to) into a run, then
  /// compact all runs into one if the run count would exceed kMaxRuns.
  struct Action {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    bool compact = false;
  };

  /// Given `interned` total nodes, flushes iff the modeled FpTable bytes for
  /// the RAM-resident entries exceed the threshold. Advances the policy.
  std::optional<Action> maybeFlush(std::uint32_t interned);

  std::uint32_t flushedEntries() const { return flushed_; }
  std::size_t runCount() const { return runEntryCounts_.size(); }

  /// Modeled kDedup component at `interned` nodes: RAM table for the
  /// unflushed tail plus the in-RAM probe samples of every run. Disk bytes
  /// are deliberately excluded — the ledger models RAM.
  std::uint64_t dedupModelBytes(std::uint32_t interned) const;

  /// Modeled on-disk bytes (headers + payloads) of the live runs.
  std::uint64_t spillDiskBytes() const;

 private:
  std::uint64_t threshold_;
  std::uint32_t flushed_ = 0;
  std::vector<std::uint64_t> runEntryCounts_;
};

}  // namespace ppn::detail
