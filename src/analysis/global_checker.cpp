#include "analysis/global_checker.h"

#include "analysis/scc.h"
#include "core/engine.h"

namespace ppn {

GlobalVerdict checkGlobalFairness(const Protocol& proto, const Problem& problem,
                                  const std::vector<Configuration>& initials,
                                  std::size_t maxNodes,
                                  ExploreObserver* observer,
                                  std::uint64_t exploreId) {
  ExploreOptions options;
  options.maxNodes = maxNodes;
  options.observer = observer;
  options.exploreId = exploreId;
  return checkGlobalFairness(proto, problem, initials, options);
}

GlobalVerdict checkGlobalFairness(const Protocol& proto, const Problem& problem,
                                  const std::vector<Configuration>& initials,
                                  const ExploreOptions& options) {
  ExploreObserver* observer = options.observer;
  const std::uint64_t exploreId = options.exploreId;
  const PhaseScope checkPhase(observer, exploreId, "check");
  GlobalVerdict verdict;
  const ConfigGraph graph = exploreCanonical(proto, initials, options);
  verdict.numConfigs = graph.size();
  if (graph.truncated) {
    verdict.reason = truncationReason(graph, options);
    return verdict;
  }
  verdict.explored = true;

  SccDecomposition scc;
  {
    const PhaseScope sccPhase(observer, exploreId, "scc");
    scc = decomposeScc(graph);
  }
  const PhaseScope verdictPhase(observer, exploreId, "verdict");
  verdict.solves = true;
  for (std::uint32_t s = 0; s < scc.numSccs; ++s) {
    if (!scc.bottom[s]) continue;
    ++verdict.numBottomSccs;
    for (const std::uint32_t node : scc.members[s]) {
      const Configuration c = graph.config(node);
      if (!problem.holds(c)) {
        verdict.solves = false;
        verdict.witness = c;
        verdict.reason = "bottom SCC contains a configuration violating '" +
                         problem.name + "'";
        return verdict;
      }
      if (problem.requireMobileQuiescence && !isNameQuiescent(proto, c)) {
        verdict.solves = false;
        verdict.witness = c;
        verdict.reason =
            "bottom SCC keeps changing mobile states (names never freeze)";
        return verdict;
      }
    }
  }
  verdict.reason = "all " + std::to_string(verdict.numBottomSccs) +
                   " bottom SCC(s) satisfy '" + problem.name + "'";
  return verdict;
}

GlobalVerdict checkGlobalFairnessConcrete(
    const Protocol& proto, const Problem& problem,
    const std::vector<Configuration>& initials, std::size_t maxNodes,
    const InteractionGraph* topology, ExploreObserver* observer,
    std::uint64_t exploreId) {
  ExploreOptions options;
  options.maxNodes = maxNodes;
  options.topology = topology;
  options.observer = observer;
  options.exploreId = exploreId;
  return checkGlobalFairnessConcrete(proto, problem, initials, options);
}

GlobalVerdict checkGlobalFairnessConcrete(
    const Protocol& proto, const Problem& problem,
    const std::vector<Configuration>& initials, const ExploreOptions& options) {
  ExploreObserver* observer = options.observer;
  const std::uint64_t exploreId = options.exploreId;
  const PhaseScope checkPhase(observer, exploreId, "check");
  GlobalVerdict verdict;
  const ConfigGraph graph = exploreConcrete(proto, initials, options);
  verdict.numConfigs = graph.size();
  if (graph.truncated) {
    verdict.reason = truncationReason(graph, options);
    return verdict;
  }
  verdict.explored = true;

  SccDecomposition scc;
  {
    const PhaseScope sccPhase(observer, exploreId, "scc");
    scc = decomposeScc(graph);
  }
  const PhaseScope verdictPhase(observer, exploreId, "verdict");
  verdict.solves = true;
  for (std::uint32_t s = 0; s < scc.numSccs; ++s) {
    if (!scc.bottom[s]) continue;
    ++verdict.numBottomSccs;
    for (const std::uint32_t node : scc.members[s]) {
      const Configuration c = graph.config(node);
      if (!problem.holds(c)) {
        verdict.solves = false;
        verdict.witness = c;
        verdict.reason = "bottom SCC contains a configuration violating '" +
                         problem.name + "'";
        return verdict;
      }
      if (problem.requireMobileQuiescence) {
        bool nameChange = false;
        graph.forEachEdge(node, [&](const Edge& e) {
          if (e.changedName) nameChange = true;
        });
        if (nameChange) {
          verdict.solves = false;
          verdict.witness = c;
          verdict.reason =
              "bottom SCC keeps changing mobile states (names never freeze)";
          return verdict;
        }
      }
    }
  }
  verdict.reason = "all " + std::to_string(verdict.numBottomSccs) +
                   " bottom SCC(s) satisfy '" + problem.name + "'";
  return verdict;
}

}  // namespace ppn
