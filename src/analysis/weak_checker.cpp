#include "analysis/weak_checker.h"

#include "analysis/scc.h"

namespace ppn {

WeakVerdict checkWeakFairness(const Protocol& proto, const Problem& problem,
                              const std::vector<Configuration>& initials,
                              std::size_t maxNodes,
                              const InteractionGraph* topology,
                              ExploreObserver* observer,
                              std::uint64_t exploreId) {
  ExploreOptions options;
  options.maxNodes = maxNodes;
  options.topology = topology;
  options.observer = observer;
  options.exploreId = exploreId;
  return checkWeakFairness(proto, problem, initials, options);
}

WeakVerdict checkWeakFairness(const Protocol& proto, const Problem& problem,
                              const std::vector<Configuration>& initials,
                              const ExploreOptions& options) {
  ExploreObserver* observer = options.observer;
  const std::uint64_t exploreId = options.exploreId;
  const InteractionGraph* topology = options.topology;
  const PhaseScope checkPhase(observer, exploreId, "check");
  WeakVerdict verdict;
  const ConfigGraph graph = exploreConcrete(proto, initials, options);
  verdict.numConfigs = graph.size();
  if (graph.truncated) {
    verdict.reason = truncationReason(graph, options);
    return verdict;
  }
  verdict.explored = true;

  SccDecomposition scc;
  {
    const PhaseScope sccPhase(observer, exploreId, "scc");
    scc = decomposeScc(graph);
  }
  const PhaseScope verdictPhase(observer, exploreId, "verdict");
  verdict.numSccs = scc.numSccs;
  const std::uint32_t pairs = numPairs(graph.numParticipants);
  // Required labels: all pairs in the complete model, or the topology edges.
  const std::uint32_t required =
      topology == nullptr ? pairs
                          : static_cast<std::uint32_t>(topology->numEdges());

  std::vector<std::uint8_t> labelSeen(pairs);
  for (std::uint32_t s = 0; s < scc.numSccs; ++s) {
    // Coverage: which pair labels appear on S-internal edges, and whether
    // any internal edge changes mobile state.
    std::fill(labelSeen.begin(), labelSeen.end(), 0);
    std::uint32_t covered = 0;
    bool internalMobileChange = false;
    for (const std::uint32_t node : scc.members[s]) {
      graph.forEachEdge(node, [&](const Edge& e) {
        if (scc.sccOf[e.to] != s) return;
        if (e.label < pairs && !labelSeen[e.label]) {
          labelSeen[e.label] = 1;
          ++covered;
        }
        if (e.changedName) internalMobileChange = true;
      });
    }
    if (covered != required) continue;  // not fair: some pair can't recur

    bool predicateFails = false;
    std::optional<Configuration> failWitness;
    for (const std::uint32_t node : scc.members[s]) {
      Configuration c = graph.config(node);
      if (!problem.holds(c)) {
        predicateFails = true;
        failWitness = std::move(c);
        break;
      }
    }
    const bool violating =
        predicateFails ||
        (problem.requireMobileQuiescence && internalMobileChange);
    if (violating) {
      ++verdict.violatingSccs;
      if (!verdict.witness.has_value()) {
        verdict.witness = failWitness.has_value()
                              ? std::move(*failWitness)
                              : graph.config(scc.members[s].front());
        verdict.witnessSccSize = scc.members[s].size();
        verdict.reason =
            predicateFails
                ? "weakly fair SCC of " + std::to_string(scc.members[s].size()) +
                      " configuration(s) violates '" + problem.name + "'"
                : "weakly fair SCC of " + std::to_string(scc.members[s].size()) +
                      " configuration(s) changes mobile states forever";
      }
    }
  }

  verdict.solves = (verdict.violatingSccs == 0);
  if (verdict.solves) {
    verdict.reason = "no violating weakly fair SCC among " +
                     std::to_string(verdict.numSccs) + " SCC(s)";
  }
  return verdict;
}

}  // namespace ppn
