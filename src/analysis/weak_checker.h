// Exact verification of convergence under WEAK fairness, and synthesis of
// adversarial weakly fair counter-schedules.
//
// Weak fairness (paper, Section 2) demands every *pair of agents* interact
// infinitely often, so the analysis runs on the concrete configuration graph
// whose edges carry the interacting pair.
//
// Characterization. A weakly fair execution that never converges exists iff
// some reachable SCC S of the concrete graph is a *violating fair SCC*:
//   (coverage)  every participant pair labels at least one S-internal edge
//               (null self-loops count: scheduling a pair whose transition is
//               null is a legal interaction), and
//   (violation) S contains a configuration where the problem predicate fails,
//               or (for quiescence problems) an S-internal edge that changes
//               a mobile agent's state.
// Given such S one builds the execution: reach S, then cycle forever through
// all members, splicing in one internal edge per pair label per lap — weakly
// fair, and the problem is violated infinitely often. Conversely the
// infinite-visit set of any weakly fair non-converging execution induces
// such an SCC. Hence `solves == (no violating fair SCC is reachable)`.
#pragma once

#include <optional>
#include <string>

#include "analysis/explore.h"
#include "analysis/problem.h"

namespace ppn {

struct WeakVerdict {
  bool explored = false;
  bool solves = false;
  std::size_t numConfigs = 0;
  std::size_t numSccs = 0;
  std::size_t violatingSccs = 0;
  /// A configuration inside the first violating fair SCC found.
  std::optional<Configuration> witness;
  /// Size of that SCC (the adversary cycles through these configurations).
  std::size_t witnessSccSize = 0;
  std::string reason;
};

/// `topology` restricts interactions to a graph (weak fairness then demands
/// every EDGE of the topology interact infinitely often); nullptr means the
/// paper's complete-interaction model.
///
/// A non-null `observer` receives a "check" phase wrapping nested "explore"
/// (from exploreConcrete, with progress/truncation events), "scc" and
/// "verdict" phases, all tagged with `exploreId`. Null observer = identical
/// behavior.
WeakVerdict checkWeakFairness(const Protocol& proto, const Problem& problem,
                              const std::vector<Configuration>& initials,
                              std::size_t maxNodes = 4'000'000,
                              const InteractionGraph* topology = nullptr,
                              ExploreObserver* observer = nullptr,
                              std::uint64_t exploreId = 0);

/// Options form: forwards maxNodes/topology/observer/exploreId AND the
/// thread count into the exploration (the SCC/verdict passes stay serial).
/// The verdict is identical for any options.threads.
WeakVerdict checkWeakFairness(const Protocol& proto, const Problem& problem,
                              const std::vector<Configuration>& initials,
                              const ExploreOptions& options);

}  // namespace ppn
