// Compact packed encoding of configurations for exploration dedup tables.
//
// The explorers intern millions of configurations; keying the visited map by
// `Configuration` costs a heap-allocated std::vector<StateId> per node plus a
// re-hash of the vector on every probe. A PackedConfig flattens the
// configuration into a fixed-width byte buffer (small-buffer inline for the
// common tiny case) with the FNV-1a hash precomputed at pack time, so map
// probes are one hash load plus one memcmp.
//
// Two forms (PackedCodec::Form):
//  * kConcrete  — one little-endian state value per mobile agent, in agent
//    order (width: the smallest of 1/2/4 bytes that fits the protocol's
//    state space);
//  * kCanonical — the occupancy histogram: one count per mobile state (width:
//    the smallest of 1/2/4 bytes that fits the population size). The encoder
//    requires the canonical (sorted) form and run-length-scans it.
// Either form is injective on its domain, followed by an optional leader
// block (presence byte + 8-byte value) when the protocol has a leader, so
// packed equality coincides with Configuration equality.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>

#include "core/configuration.h"
#include "core/protocol.h"

namespace ppn {

/// Flat byte buffer with precomputed hash. Buffers up to kInlineBytes live
/// inside the object; larger ones fall back to the heap.
class PackedConfig {
 public:
  static constexpr std::uint32_t kInlineBytes = 24;

  PackedConfig() = default;

  PackedConfig(PackedConfig&& other) noexcept { moveFrom(other); }
  PackedConfig& operator=(PackedConfig&& other) noexcept {
    if (this != &other) moveFrom(other);
    return *this;
  }
  PackedConfig(const PackedConfig& other) { copyFrom(other); }
  PackedConfig& operator=(const PackedConfig& other) {
    if (this != &other) copyFrom(other);
    return *this;
  }

  /// Resizes to `bytes` and returns the writable buffer. The caller fills it
  /// and then calls finalizeHash().
  std::uint8_t* allocate(std::uint32_t bytes) {
    size_ = bytes;
    if (bytes > kInlineBytes) {
      heap_ = std::make_unique<std::uint8_t[]>(bytes);
      return heap_.get();
    }
    heap_.reset();
    return inline_.data();
  }

  /// FNV-1a over the buffer; must be called once after filling.
  void finalizeHash() {
    std::uint64_t h = 14695981039346656037ull;
    const std::uint8_t* p = data();
    for (std::uint32_t i = 0; i < size_; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
    hash_ = h;
  }

  const std::uint8_t* data() const {
    return size_ > kInlineBytes ? heap_.get() : inline_.data();
  }
  std::uint32_t size() const { return size_; }
  std::uint64_t hash() const { return hash_; }

  friend bool operator==(const PackedConfig& a, const PackedConfig& b) {
    return a.hash_ == b.hash_ && a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_) == 0;
  }

 private:
  void moveFrom(PackedConfig& other) noexcept {
    hash_ = other.hash_;
    size_ = other.size_;
    inline_ = other.inline_;
    heap_ = std::move(other.heap_);
    other.size_ = 0;
    other.hash_ = 0;
  }
  void copyFrom(const PackedConfig& other) {
    hash_ = other.hash_;
    size_ = other.size_;
    if (size_ > kInlineBytes) {
      heap_ = std::make_unique<std::uint8_t[]>(size_);
      std::memcpy(heap_.get(), other.heap_.get(), size_);
    } else {
      heap_.reset();
      inline_ = other.inline_;
    }
  }

  std::uint64_t hash_ = 0;
  std::uint32_t size_ = 0;
  std::array<std::uint8_t, kInlineBytes> inline_{};
  std::unique_ptr<std::uint8_t[]> heap_;
};

struct PackedConfigHash {
  std::size_t operator()(const PackedConfig& p) const {
    return static_cast<std::size_t>(p.hash());
  }
};

/// Stateless per-exploration codec: fixes the form and the element widths
/// once so pack/unpack are branch-light. Safe to share across threads.
class PackedCodec {
 public:
  enum class Form { kConcrete, kCanonical };

  PackedCodec(Form form, const Protocol& proto, std::uint32_t numMobile)
      : PackedCodec(form, proto.numMobileStates(), proto.hasLeader(),
                    numMobile) {}

  /// Protocol-free form: everything the codec needs is the state count, the
  /// leader flag and the population size, so a codec stored inside a
  /// CompressedGraph can outlive the Protocol that built it.
  PackedCodec(Form form, StateId numStates, bool hasLeader,
              std::uint32_t numMobile)
      : form_(form),
        numMobile_(numMobile),
        numStates_(numStates),
        hasLeader_(hasLeader) {
    const std::uint64_t maxValue =
        form == Form::kConcrete
            ? (numStates_ == 0 ? 0 : std::uint64_t{numStates_} - 1)
            : std::uint64_t{numMobile_};
    elemWidth_ = maxValue <= 0xff ? 1u : maxValue <= 0xffff ? 2u : 4u;
    elemCount_ = form == Form::kConcrete ? numMobile_ : numStates_;
    packedBytes_ = elemCount_ * elemWidth_ + (hasLeader_ ? 9u : 0u);
  }

  std::uint32_t packedBytes() const { return packedBytes_; }

  /// Precondition for kCanonical: `c.mobile` is sorted (canonicalized).
  PackedConfig pack(const Configuration& c) const {
    PackedConfig p;
    std::uint8_t* out = p.allocate(packedBytes_);
    if (form_ == Form::kConcrete) {
      for (const StateId s : c.mobile) {
        writeLE(out, s, elemWidth_);
        out += elemWidth_;
      }
    } else {
      std::uint32_t idx = 0;
      for (StateId s = 0; s < numStates_; ++s) {
        std::uint32_t count = 0;
        while (idx < c.mobile.size() && c.mobile[idx] == s) {
          ++count;
          ++idx;
        }
        writeLE(out, count, elemWidth_);
        out += elemWidth_;
      }
    }
    if (hasLeader_) {
      *out++ = c.leader.has_value() ? 1 : 0;
      const std::uint64_t v = c.leader.value_or(0);
      for (int b = 0; b < 8; ++b) out[b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    p.finalizeHash();
    return p;
  }

  Configuration unpack(const PackedConfig& p) const {
    return unpackBytes(p.data());
  }

  /// Decodes a raw packedBytes()-wide buffer (e.g. straight out of a
  /// compressed config store, no PackedConfig wrapper).
  Configuration unpackBytes(const std::uint8_t* in) const {
    Configuration c;
    c.mobile.reserve(numMobile_);
    if (form_ == Form::kConcrete) {
      for (std::uint32_t i = 0; i < numMobile_; ++i) {
        c.mobile.push_back(static_cast<StateId>(readLE(in, elemWidth_)));
        in += elemWidth_;
      }
    } else {
      for (StateId s = 0; s < numStates_; ++s) {
        const std::uint32_t count =
            static_cast<std::uint32_t>(readLE(in, elemWidth_));
        in += elemWidth_;
        for (std::uint32_t k = 0; k < count; ++k) c.mobile.push_back(s);
      }
    }
    if (hasLeader_) {
      const bool present = *in++ != 0;
      std::uint64_t v = 0;
      for (int b = 0; b < 8; ++b) v |= std::uint64_t{in[b]} << (8 * b);
      if (present) c.leader = v;
    }
    return c;
  }

 private:
  static void writeLE(std::uint8_t* out, std::uint64_t v, std::uint32_t width) {
    for (std::uint32_t b = 0; b < width; ++b) {
      out[b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  static std::uint64_t readLE(const std::uint8_t* in, std::uint32_t width) {
    std::uint64_t v = 0;
    for (std::uint32_t b = 0; b < width; ++b) v |= std::uint64_t{in[b]} << (8 * b);
    return v;
  }

  Form form_;
  std::uint32_t numMobile_;
  StateId numStates_;
  bool hasLeader_;
  std::uint32_t elemWidth_ = 1;
  std::uint32_t elemCount_ = 0;
  std::uint32_t packedBytes_ = 0;
};

}  // namespace ppn
