#include "analysis/adversary_synth.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>

#include "analysis/scc.h"
#include "core/engine.h"

namespace ppn {

namespace {

constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

/// BFS from `from` to any node satisfying `isTarget`, using edges accepted by
/// `edgeOk`. Returns the interaction sequence and final node, or nullopt.
std::optional<std::pair<std::vector<Interaction>, std::uint32_t>> bfsPath(
    const ConfigGraph& graph, std::uint32_t from,
    const std::function<bool(std::uint32_t)>& isTarget,
    const std::function<bool(std::uint32_t, const Edge&)>& edgeOk) {
  if (isTarget(from)) return std::pair{std::vector<Interaction>{}, from};
  std::vector<std::uint32_t> parent(graph.size(), kNone);
  std::vector<Interaction> via(graph.size());
  std::deque<std::uint32_t> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    std::optional<std::uint32_t> hit;
    graph.forEachEdge(v, [&](const Edge& e) {
      if (hit.has_value()) return;
      if (!edgeOk(v, e)) return;
      if (parent[e.to] != kNone) return;
      parent[e.to] = v;
      via[e.to] = e.interaction();
      if (isTarget(e.to)) {
        hit = e.to;
        return;
      }
      queue.push_back(e.to);
    });
    if (hit.has_value()) {
      std::vector<Interaction> path;
      for (std::uint32_t w = *hit; w != from; w = parent[w]) {
        path.push_back(via[w]);
      }
      std::reverse(path.begin(), path.end());
      return std::pair{std::move(path), *hit};
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<AdversarySchedule> synthesizeWeakAdversary(
    const Protocol& proto, const Problem& problem,
    const std::vector<Configuration>& initials, std::size_t maxNodes,
    const InteractionGraph* topology, ExploreObserver* observer,
    std::uint64_t exploreId) {
  ExploreOptions options;
  options.maxNodes = maxNodes;
  options.topology = topology;
  options.observer = observer;
  options.exploreId = exploreId;
  return synthesizeWeakAdversary(proto, problem, initials, options);
}

std::optional<AdversarySchedule> synthesizeWeakAdversary(
    const Protocol& proto, const Problem& problem,
    const std::vector<Configuration>& initials, const ExploreOptions& options) {
  ExploreObserver* observer = options.observer;
  const std::uint64_t exploreId = options.exploreId;
  const InteractionGraph* topology = options.topology;
  const PhaseScope synthPhase(observer, exploreId, "synthesize");
  const ConfigGraph graph = exploreConcrete(proto, initials, options);
  if (graph.truncated) return std::nullopt;
  SccDecomposition scc;
  {
    const PhaseScope sccPhase(observer, exploreId, "scc");
    scc = decomposeScc(graph);
  }
  const std::uint32_t pairs = numPairs(graph.numParticipants);
  const std::uint32_t required =
      topology == nullptr ? pairs
                          : static_cast<std::uint32_t>(topology->numEdges());

  // Find the first violating fair SCC, mirroring checkWeakFairness.
  for (std::uint32_t s = 0; s < scc.numSccs; ++s) {
    // One internal edge per label, plus one mobile-changing internal edge.
    std::vector<std::pair<std::uint32_t, Edge>> labelEdge(
        pairs, {kNone, Edge{}});
    std::uint32_t covered = 0;
    std::optional<std::pair<std::uint32_t, Edge>> mobileChangeEdge;
    for (const std::uint32_t node : scc.members[s]) {
      graph.forEachEdge(node, [&](const Edge& e) {
        if (scc.sccOf[e.to] != s) return;
        if (e.label < pairs && labelEdge[e.label].first == kNone) {
          labelEdge[e.label] = {node, e};
          ++covered;
        }
        if (e.changedName && !mobileChangeEdge.has_value()) {
          mobileChangeEdge = {node, e};
        }
      });
    }
    if (covered != required) continue;

    std::optional<std::uint32_t> badConfig;
    for (const std::uint32_t node : scc.members[s]) {
      if (!problem.holds(graph.config(node))) {
        badConfig = node;
        break;
      }
    }
    const bool violating =
        badConfig.has_value() ||
        (problem.requireMobileQuiescence && mobileChangeEdge.has_value());
    if (!violating) continue;

    // --- Synthesize. Entry: BFS from any initial node into S.
    auto inScc = [&](std::uint32_t v) { return scc.sccOf[v] == s; };
    auto anyEdge = [](std::uint32_t, const Edge&) { return true; };
    auto internalEdge = [&](std::uint32_t, const Edge& e) {
      return scc.sccOf[e.to] == s;
    };

    // Initial node: initials were interned first, so their ids are the ids
    // of their configurations; find them by lookup.
    std::optional<std::pair<std::vector<Interaction>, std::uint32_t>> entry;
    for (const auto& init : initials) {
      const std::optional<std::uint32_t> initId = graph.findConfig(init);
      if (!initId.has_value()) continue;
      const std::uint32_t from = *initId;
      entry = bfsPath(graph, from, inScc, anyEdge);
      if (entry.has_value()) {
        AdversarySchedule schedule;
        schedule.start = init;
        schedule.prefix = std::move(entry->first);
        schedule.numParticipants = graph.numParticipants;

        // Waypoints: every label's chosen edge, the mobile-change edge (for
        // quiescence violations), and the predicate-violating config.
        std::uint32_t cursor = entry->second;
        const std::uint32_t home = cursor;
        auto walkTo = [&](std::uint32_t target) {
          const auto leg =
              bfsPath(graph, cursor, [&](std::uint32_t v) { return v == target; },
                      internalEdge);
          // Within an SCC a path always exists.
          schedule.cycle.insert(schedule.cycle.end(), leg->first.begin(),
                                leg->first.end());
          cursor = target;
        };
        auto takeEdge = [&](const std::pair<std::uint32_t, Edge>& stop) {
          walkTo(stop.first);
          schedule.cycle.push_back(stop.second.interaction());
          cursor = stop.second.to;
        };

        for (std::uint32_t label = 0; label < pairs; ++label) {
          if (labelEdge[label].first != kNone) takeEdge(labelEdge[label]);
        }
        if (problem.requireMobileQuiescence && mobileChangeEdge.has_value()) {
          takeEdge(*mobileChangeEdge);
        }
        if (badConfig.has_value()) walkTo(*badConfig);
        walkTo(home);  // close the loop
        return schedule;
      }
    }
  }
  return std::nullopt;
}

ReplayReport replayAdversary(const Protocol& proto, const Problem& problem,
                             const AdversarySchedule& schedule,
                             const InteractionGraph* topology) {
  ReplayReport report;
  Engine engine(proto, schedule.start);
  for (const Interaction it : schedule.prefix) engine.step(it);

  const Configuration entry = engine.config();
  const std::uint32_t pairs = numPairs(schedule.numParticipants);
  std::vector<std::uint8_t> seen(pairs, 0);
  bool violated = !problem.holds(engine.config());
  for (const Interaction it : schedule.cycle) {
    const std::uint32_t a = std::min(it.initiator, it.responder);
    const std::uint32_t b = std::max(it.initiator, it.responder);
    seen[pairLabel(a, b, schedule.numParticipants)] = 1;
    const Configuration before = engine.config();
    engine.step(it);
    if (problem.requireMobileQuiescence) {
      for (std::size_t k = 0; k < before.mobile.size(); ++k) {
        if (proto.nameOf(before.mobile[k]) !=
            proto.nameOf(engine.config().mobile[k])) {
          violated = true;
          break;
        }
      }
    }
    if (!problem.holds(engine.config())) violated = true;
  }

  report.cycleClosed = engine.config() == entry;
  const std::uint32_t required =
      topology == nullptr ? pairs
                          : static_cast<std::uint32_t>(topology->numEdges());
  std::uint32_t covered = 0;
  for (const auto flag : seen) covered += flag;
  report.allPairsScheduled = covered >= required;
  report.violationWitnessed = violated;
  return report;
}

}  // namespace ppn
