#include "analysis/problem.h"

#include "core/engine.h"

namespace ppn {

Problem namingProblem(const Protocol& proto) {
  Problem p;
  p.name = "naming";
  p.holds = [&proto](const Configuration& c) { return isNamed(proto, c); };
  p.requireMobileQuiescence = true;
  return p;
}

Problem countingProblem(const Protocol& proto, std::uint32_t populationSize) {
  Problem p;
  p.name = "counting(N=" + std::to_string(populationSize) + ")";
  p.holds = [&proto, populationSize](const Configuration& c) {
    if (!c.leader.has_value()) return false;
    const auto answer = proto.countingAnswer(*c.leader);
    return answer.has_value() && *answer == populationSize;
  };
  p.requireMobileQuiescence = false;
  return p;
}

Problem predicateProblem(std::string name,
                         std::function<bool(const Configuration&)> holds) {
  Problem p;
  p.name = std::move(name);
  p.holds = std::move(holds);
  p.requireMobileQuiescence = false;
  return p;
}

}  // namespace ppn
