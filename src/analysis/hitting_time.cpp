#include "analysis/hitting_time.h"

#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/engine.h"

namespace ppn {

namespace {

struct Transition {
  std::uint32_t to;
  double probability;
};

}  // namespace

HittingTime expectedConvergenceTime(const Protocol& proto,
                                    const Configuration& start,
                                    std::size_t maxStates) {
  HittingTime result;
  const std::uint32_t n = start.numMobile();
  const std::uint32_t m = n + (proto.hasLeader() ? 1u : 0u);
  if (m < 2) {
    // No interactions possible: silent by definition of the model.
    result.computed = true;
    result.numStates = 1;
    result.reason = "population too small to interact";
    return result;
  }
  const double totalPairs = static_cast<double>(m) * (m - 1);

  std::vector<Configuration> configs;
  std::vector<std::vector<Transition>> chain;  // excluding self-loop mass
  std::vector<double> stayProbability;
  std::vector<bool> silent;
  std::unordered_map<Configuration, std::uint32_t, ConfigurationHash> ids;

  auto intern = [&](const Configuration& c) -> std::uint32_t {
    const auto [it, isNew] =
        ids.emplace(c, static_cast<std::uint32_t>(configs.size()));
    if (isNew) {
      configs.push_back(c);
      chain.emplace_back();
      stayProbability.push_back(0.0);
      silent.push_back(isSilent(proto, c));
    }
    return it->second;
  };

  std::deque<std::uint32_t> frontier{intern(start.canonicalized())};
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    if (configs.size() > maxStates) {
      result.reason = "state space exceeded " + std::to_string(maxStates);
      return result;
    }
    if (silent[id]) continue;  // absorbing: no outgoing probability needed
    const Configuration current = configs[id];
    const auto hist = current.histogram(proto.numMobileStates());

    // Accumulate outcome probabilities over all ordered agent pairs.
    std::unordered_map<Configuration, double, ConfigurationHash> outcomes;
    auto addOutcome = [&](Configuration next, double weight) {
      outcomes[next.canonicalized()] += weight / totalPairs;
    };

    for (StateId s = 0; s < hist.size(); ++s) {
      if (hist[s] == 0) continue;
      // Homonym ordered pairs: c(s) * (c(s)-1).
      if (hist[s] >= 2) {
        const MobilePair r = proto.mobileDelta(s, s);
        Configuration next = current;
        // Apply to two representative s-agents.
        std::uint32_t found = 0;
        for (auto& state : next.mobile) {
          if (state == s && found < 2) {
            state = (found == 0) ? r.initiator : r.responder;
            ++found;
          }
        }
        addOutcome(std::move(next),
                   static_cast<double>(hist[s]) * (hist[s] - 1));
      }
      for (StateId t = 0; t < hist.size(); ++t) {
        if (t == s || hist[t] == 0) continue;
        // Ordered pair (s initiates, t responds): c(s) * c(t).
        const MobilePair r = proto.mobileDelta(s, t);
        Configuration next = current;
        bool doneS = false, doneT = false;
        for (auto& state : next.mobile) {
          if (!doneS && state == s) {
            state = r.initiator;
            doneS = true;
          } else if (!doneT && state == t) {
            state = r.responder;
            doneT = true;
          }
        }
        addOutcome(std::move(next),
                   static_cast<double>(hist[s]) * hist[t]);
      }
      if (proto.hasLeader()) {
        // Leader-agent ordered pairs (both orientations): 2 * c(s).
        const LeaderResult r = proto.leaderDelta(*current.leader, s);
        Configuration next = current;
        for (auto& state : next.mobile) {
          if (state == s) {
            state = r.mobile;
            break;
          }
        }
        next.leader = r.leader;
        addOutcome(std::move(next), 2.0 * hist[s]);
      }
    }

    const Configuration canonicalCurrent = current;  // already canonical
    for (auto& [next, p] : outcomes) {
      if (next == canonicalCurrent) {
        stayProbability[id] += p;
        continue;
      }
      const std::size_t before = configs.size();
      const std::uint32_t to = intern(next);
      if (configs.size() > before) frontier.push_back(to);
      chain[id].push_back(Transition{to, p});
    }
  }

  result.numStates = configs.size();

  // Reverse reachability of the silent set.
  std::vector<std::vector<std::uint32_t>> reverse(configs.size());
  for (std::uint32_t v = 0; v < configs.size(); ++v) {
    for (const Transition& t : chain[v]) reverse[t.to].push_back(v);
  }
  std::vector<bool> canReachSilence(configs.size(), false);
  std::deque<std::uint32_t> queue;
  for (std::uint32_t v = 0; v < configs.size(); ++v) {
    if (silent[v]) {
      canReachSilence[v] = true;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    for (const std::uint32_t u : reverse[v]) {
      if (!canReachSilence[u]) {
        canReachSilence[u] = true;
        queue.push_back(u);
      }
    }
  }
  for (std::uint32_t v = 0; v < configs.size(); ++v) {
    if (!canReachSilence[v]) {
      result.diverges = true;
      result.reason =
          "a reachable configuration cannot reach silence; expected time "
          "is infinite";
      result.computed = true;
      return result;
    }
  }

  // Transient states and their dense system (I - Q)x = 1.
  std::vector<std::uint32_t> transient;
  std::vector<std::uint32_t> indexOf(configs.size(),
                                     static_cast<std::uint32_t>(-1));
  for (std::uint32_t v = 0; v < configs.size(); ++v) {
    if (!silent[v]) {
      indexOf[v] = static_cast<std::uint32_t>(transient.size());
      transient.push_back(v);
    }
  }
  const std::size_t k = transient.size();
  if (k == 0) {
    result.computed = true;
    result.reason = "start is already silent";
    return result;
  }

  std::vector<std::vector<double>> a(k, std::vector<double>(k + 1, 0.0));
  for (std::size_t row = 0; row < k; ++row) {
    const std::uint32_t v = transient[row];
    a[row][row] = 1.0 - stayProbability[v];
    for (const Transition& t : chain[v]) {
      if (!silent[t.to]) {
        a[row][indexOf[t.to]] -= t.probability;
      }
    }
    a[row][k] = 1.0;
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-14) {
      result.reason = "singular system (numerical)";
      return result;
    }
    std::swap(a[col], a[pivot]);
    const double inv = 1.0 / a[col][col];
    for (std::size_t c = col; c <= k; ++c) a[col][c] *= inv;
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col || a[r][col] == 0.0) continue;
      const double factor = a[r][col];
      for (std::size_t c = col; c <= k; ++c) a[r][c] -= factor * a[col][c];
    }
  }

  const std::uint32_t startId = ids.at(start.canonicalized());
  result.computed = true;
  result.expectedInteractions =
      silent[startId] ? 0.0 : a[indexOf[startId]][k];
  result.reason = "solved " + std::to_string(k) + "-state linear system";
  return result;
}

}  // namespace ppn
