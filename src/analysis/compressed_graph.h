// Compressed ConfigGraph storage (DESIGN decision 19).
//
// The explicit representation costs 330-430 bytes per node (BENCH_explore
// _memory.json): a heap std::vector<StateId> per configuration, a
// std::vector<Edge> per adjacency list and an unordered_map node per dedup
// entry. The three stores in this header replace all of it:
//
//  * ConfigStore   — packed configurations (packed_config.h byte images,
//    fixed width W) delta-coded against their id-predecessor: BFS neighbours
//    share long byte prefixes/suffixes under the canonical ordering, so most
//    nodes cost a 2-byte (prefix, suffix) varint header plus a few changed
//    middle bytes. Every kSampleStride-th node is stored raw with its blob
//    offset in a sample index, so random access decodes at most
//    kSampleStride - 1 deltas.
//  * EdgeStreamStore — per-node edge lists as self-delimiting varint
//    streams: a byte-length header (for skip-scans from the sampled index),
//    an edge count, then per edge one flags byte, a zigzag-varint target
//    delta (seeded with the source id) and, for concrete graphs, the
//    initiator/responder pair. Pair labels are not stored: they are a pure
//    function of (initiator, responder, numParticipants).
//  * FpTable       — the RAM tier of the two-tier dedup table: open-addressed
//    (fingerprint, id) slots with NO stored key bytes. A fingerprint hit is
//    confirmed by decoding the candidate id from the ConfigStore and
//    comparing bytes, so 64-bit collisions cost a probe, never a wrong id.
//
// All three grow through ByteBuf, whose capacity is pinned to
// grownCapacity(size), so the PR 18 malloc-chunk model prices them exactly:
// modeledBytes() of a store equals the padded bytes of its real allocations.
// Everything is engine-agnostic and const-thread-safe: the parallel
// explorer's workers decode concurrently between level barriers.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/packed_config.h"
#include "core/configuration.h"
#include "obs/memory.h"

namespace ppn::detail {

// ---------------------------------------------------------------------------
// Varint primitives (LEB128; zigzag for signed deltas).

inline void appendVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

inline std::uint64_t readVarint(const std::uint8_t* p, std::uint64_t& pos) {
  std::uint64_t v = 0;
  std::uint32_t shift = 0;
  for (;;) {
    const std::uint8_t b = p[pos++];
    v |= std::uint64_t{b & 0x7fu} << shift;
    if ((b & 0x80u) == 0) return v;
    shift += 7;
  }
}

inline std::uint32_t varintSize(std::uint64_t v) {
  std::uint32_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline std::uint64_t zigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// ---------------------------------------------------------------------------
// ByteBuf: append-only byte buffer whose capacity is exactly
// grownCapacity(size), so paddedAllocBytes(capacity) is both the modeled AND
// the real allocation (the malloc request is the capacity itself).

class ByteBuf {
 public:
  void append(const void* bytes, std::uint64_t n) {
    ensure(size_ + n);
    std::memcpy(data_.get() + size_, bytes, n);
    size_ += n;
  }
  void appendU64(std::uint64_t v) { append(&v, sizeof(v)); }
  std::uint64_t u64At(std::uint64_t index) const {
    std::uint64_t v;
    std::memcpy(&v, data_.get() + index * sizeof(v), sizeof(v));
    return v;
  }
  const std::uint8_t* data() const { return data_.get(); }
  std::uint64_t size() const { return size_; }
  std::uint64_t modeledBytes() const { return paddedAllocBytes(cap_); }
  /// Modeled bytes of a ByteBuf holding `size` bytes — the closed form the
  /// parallel cut replay prices future states with.
  static std::uint64_t modeledBytesFor(std::uint64_t size) {
    return size == 0 ? 0 : paddedAllocBytes(grownCapacity(size));
  }

 private:
  void ensure(std::uint64_t need) {
    if (need <= cap_) return;
    const std::uint64_t newCap = grownCapacity(need);
    std::unique_ptr<std::uint8_t[]> grown(new std::uint8_t[newCap]);
    if (size_ != 0) std::memcpy(grown.get(), data_.get(), size_);
    data_ = std::move(grown);
    cap_ = newCap;
  }

  std::unique_ptr<std::uint8_t[]> data_;
  std::uint64_t size_ = 0;
  std::uint64_t cap_ = 0;
};

// ---------------------------------------------------------------------------
// ConfigStore: delta-coded fixed-width records with a sampled raw index.

class ConfigStore {
 public:
  /// Raw records (delta-chain restarts) every this many nodes: random access
  /// decodes at most kSampleStride - 1 deltas after one sample lookup.
  static constexpr std::uint32_t kSampleStride = 32;

  void init(std::uint32_t widthBytes) {
    width_ = widthBytes;
    tail_.assign(width_, 0);
  }
  std::uint32_t width() const { return width_; }
  std::uint32_t count() const { return count_; }
  std::uint64_t blobBytes() const { return blob_.size(); }

  /// Appends the packed image of node id == count(). `bytes` must hold
  /// width() bytes.
  void append(const std::uint8_t* bytes) {
    if (count_ % kSampleStride == 0) {
      samples_.appendU64(blob_.size());
      blob_.append(bytes, width_);
    } else {
      encodeDelta(tail_.data(), bytes, width_, &scratch_);
      blob_.append(scratch_.data(), scratch_.size());
    }
    std::memcpy(tail_.data(), bytes, width_);
    ++count_;
  }

  /// Decodes node `id` into `out` (width() bytes). Thread-safe: const and
  /// touches no mutable state.
  void decode(std::uint32_t id, std::uint8_t* out) const {
    const std::uint32_t s = id / kSampleStride;
    std::uint64_t pos = samples_.u64At(s);
    const std::uint8_t* blob = blob_.data();
    std::memcpy(out, blob + pos, width_);
    pos += width_;
    for (std::uint32_t j = s * kSampleStride + 1; j <= id; ++j) {
      applyDelta(blob, pos, out, width_);
    }
  }

  /// Sequential reader: at(id) is O(1 delta) when ids ascend by one (the BFS
  /// expansion order), falling back to a sampled decode on any other jump.
  /// Holds no pointers into the blob, so interleaved append() calls are fine.
  class Cursor {
   public:
    explicit Cursor(const ConfigStore& store)
        : store_(&store), buf_(store.width()) {}

    const std::uint8_t* at(std::uint32_t id) {
      if (have_ && id == cur_) return buf_.data();
      if (have_ && id == cur_ + 1 && id % kSampleStride != 0 &&
          id < store_->count_) {
        store_->applyDelta(store_->blob_.data(), pos_, buf_.data(),
                           store_->width_);
        cur_ = id;
        return buf_.data();
      }
      // Restart from the sample at or below id, then walk forward.
      const std::uint32_t s = id / kSampleStride;
      pos_ = store_->samples_.u64At(s);
      std::memcpy(buf_.data(), store_->blob_.data() + pos_, store_->width_);
      pos_ += store_->width_;
      for (std::uint32_t j = s * kSampleStride + 1; j <= id; ++j) {
        store_->applyDelta(store_->blob_.data(), pos_, buf_.data(),
                           store_->width_);
      }
      cur_ = id;
      have_ = true;
      return buf_.data();
    }

   private:
    const ConfigStore* store_;
    std::vector<std::uint8_t> buf_;
    std::uint64_t pos_ = 0;
    std::uint32_t cur_ = 0;
    bool have_ = false;
  };

  /// Dry-run encoder: prices the append sequence of future nodes without
  /// touching the store (the parallel cut replay walks one of these over the
  /// level's pending entries in stream order).
  class SizeSim {
   public:
    SizeSim(std::uint32_t count, std::uint64_t blobBytes,
            std::vector<std::uint8_t> tail)
        : count_(count), blobBytes_(blobBytes), tail_(std::move(tail)) {}

    /// Returns the blob growth of appending `bytes`, and advances.
    std::uint64_t append(const std::uint8_t* bytes) {
      const auto width = static_cast<std::uint32_t>(tail_.size());
      std::uint64_t added;
      if (count_ % kSampleStride == 0) {
        added = width;
      } else {
        added = deltaSize(tail_.data(), bytes, width);
      }
      std::memcpy(tail_.data(), bytes, width);
      ++count_;
      blobBytes_ += added;
      return added;
    }
    std::uint64_t blobBytes() const { return blobBytes_; }

   private:
    std::uint32_t count_;
    std::uint64_t blobBytes_;
    std::vector<std::uint8_t> tail_;
  };

  SizeSim sizeSim() const { return SizeSim(count_, blob_.size(), tail_); }

  std::uint64_t modeledBytes() const {
    return blob_.modeledBytes() + samples_.modeledBytes();
  }
  /// Closed form of modeledBytes() at `count` nodes whose blob holds
  /// `blobBytes` — engine-invariant, used by the parallel cut replay.
  static std::uint64_t modeledBytesAt(std::uint64_t count,
                                      std::uint64_t blobBytes) {
    const std::uint64_t sampleBytes =
        (count + kSampleStride - 1) / kSampleStride * 8;
    return ByteBuf::modeledBytesFor(blobBytes) +
           ByteBuf::modeledBytesFor(sampleBytes);
  }

 private:
  /// Delta record: varint(shared prefix), varint(shared suffix), raw middle.
  static void encodeDelta(const std::uint8_t* prev, const std::uint8_t* next,
                          std::uint32_t width, std::vector<std::uint8_t>* out) {
    std::uint32_t prefix = 0;
    while (prefix < width && prev[prefix] == next[prefix]) ++prefix;
    std::uint32_t suffix = 0;
    while (suffix < width - prefix &&
           prev[width - 1 - suffix] == next[width - 1 - suffix]) {
      ++suffix;
    }
    out->clear();
    appendVarint(*out, prefix);
    appendVarint(*out, suffix);
    out->insert(out->end(), next + prefix, next + (width - suffix));
  }

  static std::uint64_t deltaSize(const std::uint8_t* prev,
                                 const std::uint8_t* next,
                                 std::uint32_t width) {
    std::uint32_t prefix = 0;
    while (prefix < width && prev[prefix] == next[prefix]) ++prefix;
    std::uint32_t suffix = 0;
    while (suffix < width - prefix &&
           prev[width - 1 - suffix] == next[width - 1 - suffix]) {
      ++suffix;
    }
    return std::uint64_t{varintSize(prefix)} + varintSize(suffix) +
           (width - prefix - suffix);
  }

  /// Applies the delta record at `pos` onto `buf` in place; advances pos.
  void applyDelta(const std::uint8_t* blob, std::uint64_t& pos,
                  std::uint8_t* buf, std::uint32_t width) const {
    const auto prefix = static_cast<std::uint32_t>(readVarint(blob, pos));
    const auto suffix = static_cast<std::uint32_t>(readVarint(blob, pos));
    const std::uint32_t mid = width - prefix - suffix;
    std::memcpy(buf + prefix, blob + pos, mid);
    pos += mid;
  }

  std::uint32_t width_ = 0;
  std::uint32_t count_ = 0;
  ByteBuf blob_;
  ByteBuf samples_;                  // blob offset of every kSampleStride-th node
  std::vector<std::uint8_t> tail_;   // raw bytes of the last appended node
  std::vector<std::uint8_t> scratch_;
};

// ---------------------------------------------------------------------------
// EdgeStreamStore: per-node self-delimiting varint edge streams.

/// The wire form of one edge, label-free (labels are recomputed from the
/// oriented pair; canonical graphs carry none).
struct RawEdge {
  std::uint32_t to = 0;
  std::uint8_t flags = 0;  // bit0 changed, bit1 changedMobile, bit2 changedName
  std::uint16_t initiator = 0;
  std::uint16_t responder = 0;
};

class EdgeStreamStore {
 public:
  /// Stream-offset samples every this many nodes; a lookup skip-scans at
  /// most kSampleStride - 1 byte-length headers.
  static constexpr std::uint32_t kSampleStride = 16;

  void init(bool concrete) { concrete_ = concrete; }
  bool concrete() const { return concrete_; }
  std::uint32_t streamCount() const { return streams_; }
  std::uint64_t blobBytes() const { return blob_.size(); }

  /// Encodes the body of node `nodeId`'s stream: varint edge count, then per
  /// edge flags / zigzag target delta (seeded with nodeId) / concrete
  /// initiator+responder. `get(k)` returns the k-th RawEdge.
  template <class Get>
  static void encodeBody(std::vector<std::uint8_t>& out, std::uint32_t nodeId,
                         std::uint32_t count, bool concrete, Get&& get) {
    out.clear();
    appendVarint(out, count);
    std::int64_t prev = nodeId;
    for (std::uint32_t k = 0; k < count; ++k) {
      const RawEdge e = get(k);
      out.push_back(e.flags);
      appendVarint(out, zigzagEncode(std::int64_t{e.to} - prev));
      prev = e.to;
      if (concrete) {
        appendVarint(out, e.initiator);
        appendVarint(out, e.responder);
      }
    }
  }

  /// Appends the pre-encoded body of node `nodeId`; streams must be appended
  /// in ascending id order starting at 0 (the BFS expansion order).
  void appendStream(std::uint32_t nodeId, const std::vector<std::uint8_t>& body) {
    (void)nodeId;  // == streams_ by the append-in-expansion-order contract
    if (streams_ % kSampleStride == 0) samples_.appendU64(blob_.size());
    scratch_.clear();
    appendVarint(scratch_, body.size());
    blob_.append(scratch_.data(), scratch_.size());
    blob_.append(body.data(), body.size());
    ++streams_;
  }

  /// Blob growth of appending a body of `bodyBytes` bytes (the byte-length
  /// header plus the body) — for the parallel cut replay.
  static std::uint64_t streamBlobBytes(std::uint64_t bodyBytes) {
    return varintSize(bodyBytes) + bodyBytes;
  }

  /// Visits node `id`'s edges as fn(const RawEdge&). Nodes never expanded
  /// (id >= streamCount(), the truncated frontier) have no edges.
  template <class Fn>
  void forEachEdgeRaw(std::uint32_t id, Fn&& fn) const {
    if (id >= streams_) return;
    std::uint64_t pos = bodyStart(id);
    const std::uint8_t* blob = blob_.data();
    const auto count = static_cast<std::uint32_t>(readVarint(blob, pos));
    std::int64_t prev = id;
    for (std::uint32_t k = 0; k < count; ++k) {
      RawEdge e;
      e.flags = blob[pos++];
      prev += zigzagDecode(readVarint(blob, pos));
      e.to = static_cast<std::uint32_t>(prev);
      if (concrete_) {
        e.initiator = static_cast<std::uint16_t>(readVarint(blob, pos));
        e.responder = static_cast<std::uint16_t>(readVarint(blob, pos));
      }
      fn(e);
    }
  }

  std::size_t edgeCount(std::uint32_t id) const {
    if (id >= streams_) return 0;
    std::uint64_t pos = bodyStart(id);
    return readVarint(blob_.data(), pos);
  }

  std::uint64_t modeledBytes() const {
    return blob_.modeledBytes() + samples_.modeledBytes();
  }
  static std::uint64_t modeledBytesAt(std::uint64_t streams,
                                      std::uint64_t blobBytes) {
    const std::uint64_t sampleBytes =
        (streams + kSampleStride - 1) / kSampleStride * 8;
    return ByteBuf::modeledBytesFor(blobBytes) +
           ByteBuf::modeledBytesFor(sampleBytes);
  }

 private:
  std::uint64_t bodyStart(std::uint32_t id) const {
    std::uint64_t pos = samples_.u64At(id / kSampleStride);
    const std::uint8_t* blob = blob_.data();
    for (std::uint32_t j = (id / kSampleStride) * kSampleStride; j < id; ++j) {
      pos += readVarint(blob, pos);  // skip a whole stream by its byte length
    }
    readVarint(blob, pos);  // this stream's byte length
    return pos;
  }

  bool concrete_ = false;
  std::uint32_t streams_ = 0;
  ByteBuf blob_;
  ByteBuf samples_;
  std::vector<std::uint8_t> scratch_;
};

// ---------------------------------------------------------------------------
// FpTable: RAM tier of the two-tier dedup table.

class FpTable {
 public:
  /// Reserved id marking an empty slot; interned node ids never reach it.
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  std::uint64_t size() const { return count_; }

  /// Capacity rule: twice the grown power of two (load factor <= 0.5), with
  /// a small floor. A pure function of the entry count, so serial and
  /// parallel runs price the table identically whatever their physical
  /// sharding.
  static std::uint64_t capacityFor(std::uint64_t entries) {
    if (entries == 0) return 0;
    const std::uint64_t cap = 2 * grownCapacity(entries);
    return cap < 16 ? 16 : cap;
  }
  static std::uint64_t modeledBytesFor(std::uint64_t entries) {
    const std::uint64_t cap = capacityFor(entries);
    if (cap == 0) return 0;
    return paddedAllocBytes(cap * sizeof(std::uint64_t)) +
           paddedAllocBytes(cap * sizeof(std::uint32_t));
  }

  void insert(std::uint64_t fp, std::uint32_t id) {
    const std::uint64_t need = capacityFor(count_ + 1);
    if (need > cap_) rehash(need);
    place(fp, id);
    ++count_;
  }

  /// Probes every slot whose fingerprint matches until `verify(id)` accepts
  /// one — collisions are resolved by the caller against the ConfigStore.
  template <class Verify>
  std::optional<std::uint32_t> find(std::uint64_t fp, Verify&& verify) const {
    if (cap_ == 0) return std::nullopt;
    const std::uint64_t mask = cap_ - 1;
    for (std::uint64_t i = fp & mask;; i = (i + 1) & mask) {
      if (ids_[i] == kEmptySlot) return std::nullopt;
      if (fps_[i] == fp && verify(ids_[i])) return ids_[i];
    }
  }

  /// Drains every entry into `out` (unsorted) and resets to an empty table —
  /// the serial spill flush.
  void drain(std::vector<std::pair<std::uint64_t, std::uint32_t>>& out) {
    for (std::uint64_t i = 0; i < cap_; ++i) {
      if (ids_[i] != kEmptySlot) out.emplace_back(fps_[i], ids_[i]);
    }
    fps_.clear();
    fps_.shrink_to_fit();
    ids_.clear();
    ids_.shrink_to_fit();
    cap_ = 0;
    count_ = 0;
  }

  /// Drains only ids in [lo, hi) into `out` and rebuilds the table with the
  /// survivors — the parallel shards' share of a replayed flush.
  void drainRange(std::uint32_t lo, std::uint32_t hi,
                  std::vector<std::pair<std::uint64_t, std::uint32_t>>& out) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> keep;
    for (std::uint64_t i = 0; i < cap_; ++i) {
      if (ids_[i] == kEmptySlot) continue;
      if (ids_[i] >= lo && ids_[i] < hi) {
        out.emplace_back(fps_[i], ids_[i]);
      } else {
        keep.emplace_back(fps_[i], ids_[i]);
      }
    }
    fps_.clear();
    fps_.shrink_to_fit();
    ids_.clear();
    ids_.shrink_to_fit();
    cap_ = 0;
    count_ = 0;
    for (const auto& [fp, id] : keep) insert(fp, id);
  }

 private:
  void place(std::uint64_t fp, std::uint32_t id) {
    const std::uint64_t mask = cap_ - 1;
    std::uint64_t i = fp & mask;
    while (ids_[i] != kEmptySlot) i = (i + 1) & mask;
    fps_[i] = fp;
    ids_[i] = id;
  }

  void rehash(std::uint64_t newCap) {
    std::vector<std::uint64_t> oldFps = std::move(fps_);
    std::vector<std::uint32_t> oldIds = std::move(ids_);
    const std::uint64_t oldCap = cap_;
    fps_.assign(newCap, 0);
    ids_.assign(newCap, kEmptySlot);
    cap_ = newCap;
    for (std::uint64_t i = 0; i < oldCap; ++i) {
      if (oldIds[i] != kEmptySlot) place(oldFps[i], oldIds[i]);
    }
  }

  std::vector<std::uint64_t> fps_;
  std::vector<std::uint32_t> ids_;
  std::uint64_t cap_ = 0;
  std::uint64_t count_ = 0;
};

// ---------------------------------------------------------------------------
// CompressedGraph: the storage a compressed-mode exploration leaves behind,
// embedded in ConfigGraph. Holds the codec (reconstructed without the
// Protocol) so decoding outlives the exploration.

class CompressedGraph {
 public:
  bool engaged() const { return codec_.has_value(); }

  void init(const PackedCodec& codec, bool concrete) {
    codec_ = codec;
    configs_.init(codec.packedBytes());
    edges_.init(concrete);
  }

  std::uint32_t nodeCount() const { return configs_.count(); }

  Configuration config(std::uint32_t id) const {
    std::vector<std::uint8_t> buf(configs_.width());
    configs_.decode(id, buf.data());
    return codec_->unpackBytes(buf.data());
  }

  ConfigStore& configStore() { return configs_; }
  const ConfigStore& configStore() const { return configs_; }
  EdgeStreamStore& edgeStore() { return edges_; }
  const EdgeStreamStore& edgeStore() const { return edges_; }
  const PackedCodec& codec() const { return *codec_; }

  /// Modeled retained footprint of the compressed graph (configs + edges).
  std::uint64_t modeledBytes() const {
    return configs_.modeledBytes() + edges_.modeledBytes();
  }

 private:
  std::optional<PackedCodec> codec_;
  ConfigStore configs_;
  EdgeStreamStore edges_;
};

}  // namespace ppn::detail
